package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"hashstash/internal/exec"
	"hashstash/internal/expr"
	"hashstash/internal/optimizer"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Run executes a query against the sharded engine: single-partition
// queries go straight to their shard's optimizer, everything else runs
// as scatter-gather.
func (e *Engine) Run(q *plan.Query) (*optimizer.Result, error) {
	return e.RunContext(context.Background(), q)
}

// RunContext is Run under a context: cancellation aborts the routed
// shard's (or every scatter leg's) morsel dispatch.
func (e *Engine) RunContext(ctx context.Context, q *plan.Query) (*optimizer.Result, error) {
	if s, ok := e.routeShard(q); ok {
		e.shards[s].Queries.Add(1)
		return e.shards[s].Opt.RunContext(ctx, q)
	}
	return e.scatter(ctx, q)
}

// scatter fans a query out to every shard and merges the legs. The
// per-shard sub-query is the original query with three adjustments:
// mismatched join sides are exchanged (planExchanges/applyExchanges),
// aggregates are rewritten to additive partials over the full group-by
// key, and ORDER BY/LIMIT stay per-shard only when the merge can
// exploit them (top-k legs feeding a k-way merge). All shards' compiled
// pipelines run under one scheduler invocation with shard-affine worker
// groups; work stealing crosses shards only when a group's deques run
// dry.
func (e *Engine) scatter(ctx context.Context, q *plan.Query) (*optimizer.Result, error) {
	pl := e.planExchanges(q)
	qr, temps, err := e.applyExchanges(q, pl)
	defer e.dropTemps(temps)
	if err != nil {
		return nil, err
	}

	agg := qr.IsAggregate()
	var partials []expr.AggSpec
	var srcIdx [][2]int
	leg := *qr
	if agg {
		// Each leg computes additive partials over the full GROUP BY
		// key (GroupBy may be a superset of Select; the merge needs
		// every key column to fold groups across shards).
		leg.Select = append([]storage.ColRef(nil), qr.GroupBy...)
		partials, srcIdx = expr.RewriteAvg(qr.Aggs)
		leg.Aggs = partials
		leg.OrderBy = nil
		leg.Limit = 0
	}

	n := len(e.shards)
	preps := make([]*optimizer.Prepared, n)
	errs := make([]error, n)
	legs := make([]plan.Query, n)
	var wg sync.WaitGroup
	for s := range e.shards {
		legs[s] = leg
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			preps[s], errs[s] = e.shards[s].Opt.Prepare(&legs[s])
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, p := range preps {
				if p != nil {
					p.Abort()
				}
			}
			return nil, err
		}
	}

	pipelines := make([][]*exec.Pipeline, n)
	for s, p := range preps {
		pipelines[s] = p.Pipelines()
	}
	spar := e.par
	spar.Ctx = ctx
	t0 := time.Now()
	runErr := exec.RunSharded(pipelines, spar)
	execTime := time.Since(t0)

	results := make([]*optimizer.Result, n)
	var firstErr error
	for s, p := range preps {
		r, err := p.Finish(runErr, execTime)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[s] = r
		e.shards[s].Queries.Add(1)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	var merged *optimizer.Result
	switch {
	case agg:
		merged, err = mergeAggregates(q, results, partials, srcIdx)
	case q.OrderBy != nil:
		merged = mergeOrdered(q, results)
	default:
		merged = mergeConcat(q, results)
	}
	if err != nil {
		return nil, err
	}
	foldStats(merged, results, execTime)
	return merged, nil
}

// foldStats sums the per-leg execution counters into the merged result.
func foldStats(out *optimizer.Result, legs []*optimizer.Result, execTime time.Duration) {
	out.ExecTime = execTime
	for _, r := range legs {
		if r.PlanTime > out.PlanTime {
			out.PlanTime = r.PlanTime // legs planned concurrently: max, not sum
		}
		out.RowsIn += r.RowsIn
		out.RowsOut += r.RowsOut
		out.EstimatedCost += r.EstimatedCost
		out.Decisions = append(out.Decisions, r.Decisions...)
	}
}

// mergeConcat splices unordered legs (any LIMIT is re-applied).
func mergeConcat(q *plan.Query, legs []*optimizer.Result) *optimizer.Result {
	out := &optimizer.Result{Columns: legs[0].Columns}
	for _, r := range legs {
		out.Rows = append(out.Rows, r.Rows...)
	}
	if q.Limit > 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
	}
	return out
}

// mergeOrdered k-way merges legs that are each already sorted on the
// ORDER BY column (their own OrderAndLimit ran, so with LIMIT k each
// leg is a top-k superset of its contribution) and truncates to the
// global limit.
func mergeOrdered(q *plan.Query, legs []*optimizer.Result) *optimizer.Result {
	out := &optimizer.Result{Columns: legs[0].Columns}
	idx := -1
	want := q.OrderBy.Col.String()
	for i, c := range out.Columns {
		if c == want {
			idx = i
			break
		}
	}
	if idx < 0 {
		return mergeConcat(q, legs)
	}
	desc := q.OrderBy.Desc
	cursors := make([]int, len(legs))
	total := 0
	for _, r := range legs {
		total += len(r.Rows)
	}
	if q.Limit > 0 && q.Limit < total {
		total = q.Limit
	}
	out.Rows = make([][]types.Value, 0, total)
	for len(out.Rows) < total {
		best := -1
		for s, r := range legs {
			if cursors[s] >= len(r.Rows) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			c := r.Rows[cursors[s]][idx].Compare(legs[best].Rows[cursors[best]][idx])
			if (desc && c > 0) || (!desc && c < 0) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		out.Rows = append(out.Rows, legs[best].Rows[cursors[best]])
		cursors[best]++
	}
	return out
}

// groupKey encodes one group's key cells into a map key
// (length-prefixed, kind-tagged — collision-free across kinds).
func groupKey(buf []byte, vals []types.Value, n int) ([]byte, string) {
	buf = buf[:0]
	for _, v := range vals[:n] {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case types.String:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		default:
			buf = binary.LittleEndian.AppendUint64(buf, v.Bits())
		}
	}
	return buf, string(buf)
}

// foldCell merges two partial aggregate cells for an additive function,
// mirroring the engine's own cross-partition merge semantics: counts
// add as integers, sums add in the cell's kind, min/max compare.
func foldCell(f expr.AggFunc, a, b types.Value) types.Value {
	switch f {
	case expr.AggCount:
		return types.NewInt(a.AsInt() + b.AsInt())
	case expr.AggSum:
		if a.Kind == types.Int64 && b.Kind == types.Int64 {
			return types.NewInt(a.I + b.I)
		}
		return types.NewFloat(a.AsFloat() + b.AsFloat())
	case expr.AggMin:
		if a.Compare(b) <= 0 {
			return a
		}
		return b
	default: // max
		if a.Compare(b) >= 0 {
			return a
		}
		return b
	}
}

// mergeAggregates folds the per-shard partial-aggregate legs: rows are
// grouped by the full GROUP BY key, each additive partial folds across
// shards, rewritten AVGs finalize as SUM/COUNT, and the surviving rows
// project down to the original SELECT list before the original ORDER
// BY/LIMIT applies.
func mergeAggregates(q *plan.Query, legs []*optimizer.Result, partials []expr.AggSpec, srcIdx [][2]int) (*optimizer.Result, error) {
	nGroup := len(q.GroupBy)

	// selPos[i] is SELECT column i's position within the GROUP BY key.
	selPos := make([]int, len(q.Select))
	for i, sel := range q.Select {
		selPos[i] = -1
		for g, gb := range q.GroupBy {
			if sel == gb {
				selPos[i] = g
				break
			}
		}
		if selPos[i] < 0 {
			return nil, fmt.Errorf("shard: select column %v not in group by", sel)
		}
	}

	groups := make(map[string][]types.Value)
	var order []string // deterministic emission order: first appearance
	var scratch []byte
	for _, r := range legs {
		for _, row := range r.Rows {
			if len(row) != nGroup+len(partials) {
				return nil, fmt.Errorf("shard: partial-aggregate leg row has %d cells, want %d", len(row), nGroup+len(partials))
			}
			var key string
			scratch, key = groupKey(scratch, row, nGroup)
			acc, ok := groups[key]
			if !ok {
				groups[key] = append([]types.Value(nil), row...)
				order = append(order, key)
				continue
			}
			for p := range partials {
				ci := nGroup + p
				acc[ci] = foldCell(partials[p].Func, acc[ci], row[ci])
			}
		}
	}

	columns := make([]string, 0, len(q.Select)+len(q.Aggs))
	for _, sel := range q.Select {
		columns = append(columns, sel.String())
	}
	for _, a := range q.Aggs {
		columns = append(columns, a.Name())
	}

	rows := make([][]types.Value, 0, len(order))
	for _, key := range order {
		acc := groups[key]
		row := make([]types.Value, 0, len(columns))
		for _, g := range selPos {
			row = append(row, acc[g])
		}
		for i, a := range q.Aggs {
			si, ci := srcIdx[i][0], srcIdx[i][1]
			if a.Func == expr.AggAvg {
				cnt := acc[nGroup+ci].AsFloat()
				if cnt == 0 || math.IsNaN(cnt) {
					row = append(row, types.NewFloat(0))
				} else {
					row = append(row, types.NewFloat(acc[nGroup+si].AsFloat()/cnt))
				}
				continue
			}
			row = append(row, acc[nGroup+si])
		}
		rows = append(rows, row)
	}
	out := &optimizer.Result{Columns: columns}
	out.Rows = optimizer.OrderAndLimit(rows, columns, q)
	return out, nil
}
