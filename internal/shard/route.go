package shard

import (
	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// pointValue extracts the single value of a point-equality constraint
// (a degenerate closed interval, or a one-element string set).
func pointValue(c expr.Constraint) (types.Value, bool) {
	if c.Kind == types.String {
		if len(c.Set) == 1 {
			return types.NewString(c.Set[0]), true
		}
		return types.Value{}, false
	}
	iv := c.Iv
	if iv.HasLo && iv.HasHi && iv.LoIncl && iv.HiIncl && iv.Lo.Compare(iv.Hi) == 0 {
		return iv.Lo, true
	}
	return types.Value{}, false
}

// routeShard decides whether q is a single-partition query: one whose
// partition-key constraints pin every partitioned relation's matching
// rows to the same shard. It returns (shard, true) when so.
//
// The analysis starts from explicit point-equality filters on partition
// keys and then propagates them across the join graph: an equi-join
// between two partition keys transfers a pinned value from one side to
// the other (the joined rows share the key value, hence the hash
// shard). The propagation runs to fixpoint so a chain of co-partitioned
// joins is pinned by a single constraint on any of its members.
//
// A query that references no partitioned table at all runs entirely on
// replicas; it is pinned to shard 0 (scattering it would duplicate
// rows).
func (e *Engine) routeShard(q *plan.Query) (int, bool) {
	n := len(e.shards)
	if n == 1 {
		return 0, true
	}

	// keyRef[i] is relation i's partition-key column (alias-qualified),
	// or nil when the relation's table is replicated.
	type pin struct {
		val types.Value
		ok  bool
	}
	keyRef := make([]*storage.ColRef, len(q.Relations))
	pins := make([]pin, len(q.Relations))
	anyPartitioned := false
	for i, rel := range q.Relations {
		key, ok := e.keys[rel.Table]
		if !ok {
			continue
		}
		anyPartitioned = true
		ref := storage.ColRef{Table: rel.Alias, Column: key}
		keyRef[i] = &ref
		if con, ok := q.Filter.Constraint(ref); ok {
			if v, isPoint := pointValue(con); isPoint {
				pins[i] = pin{val: v, ok: true}
			}
		}
	}
	if !anyPartitioned {
		return 0, true
	}

	// Propagate pins across partition-key = partition-key join edges.
	for changed := true; changed; {
		changed = false
		for _, j := range q.Joins {
			li, ri := q.AliasIndex(j.Left.Table), q.AliasIndex(j.Right.Table)
			if li < 0 || ri < 0 || keyRef[li] == nil || keyRef[ri] == nil {
				continue
			}
			if j.Left != *keyRef[li] || j.Right != *keyRef[ri] {
				continue
			}
			if pins[li].ok && !pins[ri].ok {
				pins[ri] = pins[li]
				changed = true
			} else if pins[ri].ok && !pins[li].ok {
				pins[li] = pins[ri]
				changed = true
			}
		}
	}

	target := -1
	var fragRows float64
	for i := range q.Relations {
		if keyRef[i] == nil {
			continue
		}
		if !pins[i].ok {
			return 0, false
		}
		s := storage.ShardOf(pins[i].val, n)
		if target >= 0 && s != target {
			// Two partition keys pinned to different shards: the join
			// result is provably empty on every single shard too, but
			// routing to either one returns the correct (empty) answer
			// only if all relations are there — they are not. Scatter.
			return 0, false
		}
		target = s
		if st := e.shards[s].Cat.Stats(q.Relations[i].Table); st != nil {
			fragRows += float64(st.Rows)
		}
	}
	if target < 0 {
		return 0, false
	}
	if !e.model.RouteSingleShard(fragRows, n) {
		return 0, false
	}
	return target, true
}
