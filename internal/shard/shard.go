// Package shard scales the engine out across N hash-partitioned
// shards. Each shard is a self-contained slice of the system — its own
// catalog fragment, its own hash-table/index cache with benefit
// accounting, its own optimizer (reuse history, ski-rental index
// accumulator) and its own worker deques in the scheduler — so the
// paper's reuse machinery composes per locality domain instead of
// contending on one global pool.
//
// Tables declare at most one partition key. Declared tables are split
// into per-shard fragments by partition-key hash (storage.Partitioner);
// undeclared tables are replicated to every shard, which keeps them
// join-compatible with any fragment. The router sends a query whose
// partition-key equality constraints pin every partitioned relation to
// one shard straight to that shard's optimizer; everything else
// compiles to a scatter-gather plan — one per-shard sub-plan, fanned
// out as shard-grouped jobs of a single scheduler run, gathered by a
// merge matched to the query shape (partial-aggregate fold, sorted
// k-way merge for ORDER BY ... LIMIT, plain concatenation). Joins
// whose sides are co-partitioned on the join columns probe shard-
// locally; mismatched joins move the cheaper side through a batched
// exchange (repartition when that aligns the join, broadcast
// otherwise), priced by the cost model.
package shard

import (
	"fmt"
	"sync/atomic"

	"hashstash/internal/catalog"
	"hashstash/internal/costmodel"
	"hashstash/internal/exec"
	"hashstash/internal/htcache"
	"hashstash/internal/optimizer"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Shard is one locality domain: a catalog fragment plus the shard's
// private cache and optimizer.
type Shard struct {
	ID    int
	Cat   *catalog.Catalog
	Cache *htcache.Cache
	Opt   *optimizer.Optimizer

	// Queries counts the queries (or scatter legs) this shard planned
	// and executed — the per-shard scan counter routing tests assert
	// on.
	Queries atomic.Int64
}

// Engine is the sharding router above the per-shard optimizers.
type Engine struct {
	shards []*Shard
	model  *costmodel.Model
	// par is the total execution budget of one scatter-gather run,
	// split into per-shard worker groups by exec.RunSharded.
	par exec.Parallelism
	// keys maps table name → declared partition-key column. Undeclared
	// tables are replicated.
	keys map[string]string
	// seq names exchange temporaries uniquely across concurrent
	// queries.
	seq atomic.Int64
}

// New assembles an engine over pre-built shards. All shards must share
// the hash layout (they do, by construction: storage.PartitionHash).
func New(shards []*Shard, model *costmodel.Model, par exec.Parallelism) *Engine {
	if model == nil {
		model = costmodel.NewModel(nil)
	}
	return &Engine{shards: shards, model: model, par: par, keys: make(map[string]string)}
}

// Shards returns the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard s.
func (e *Engine) Shard(s int) *Shard { return e.shards[s] }

// DeclarePartitionKey records that table is hash-partitioned by column.
// Declare before loading the table; declaring after load requires
// Repartition.
func (e *Engine) DeclarePartitionKey(table, column string) {
	e.keys[table] = column
	for _, s := range e.shards {
		s.Cat.DeclarePartitionKey(table, column)
	}
}

// PartitionKey returns the declared partition key of a table.
func (e *Engine) PartitionKey(table string) (string, bool) {
	col, ok := e.keys[table]
	return col, ok
}

// LoadTable places a table across the shards: declared tables split
// into hash fragments, undeclared ones replicate (every shard catalog
// registers the same underlying table).
func (e *Engine) LoadTable(t *storage.Table) error {
	if key, ok := e.keys[t.Name]; ok {
		frags, err := storage.PartitionTable(t, key, len(e.shards))
		if err != nil {
			return err
		}
		for s, sh := range e.shards {
			sh.Cat.Register(frags[s])
			sh.Cat.DeclarePartitionKey(t.Name, key)
		}
		return nil
	}
	for _, sh := range e.shards {
		sh.Cat.Register(t)
	}
	return nil
}

// Repartition converts an already-loaded table to hash-partitioned
// form (or re-keys it): the current row set — replica or fragments —
// is gathered, split by the new key, and re-registered; every shard's
// cached artifacts over the table are dropped.
func (e *Engine) Repartition(table, column string) error {
	full, err := e.GatherTable(table)
	if err != nil {
		return err
	}
	if full.Column(column) == nil {
		return fmt.Errorf("shard: table %q has no partition-key column %q", table, column)
	}
	e.DeclarePartitionKey(table, column)
	if err := e.LoadTable(full); err != nil {
		return err
	}
	for _, sh := range e.shards {
		sh.Cache.InvalidateTable(table)
	}
	return nil
}

// GatherTable reassembles the full row set of a table from its
// placement (the replica, or the concatenation of every fragment).
func (e *Engine) GatherTable(table string) (*storage.Table, error) {
	t0 := e.shards[0].Cat.Table(table)
	if t0 == nil {
		return nil, fmt.Errorf("shard: unknown table %q", table)
	}
	if _, ok := e.keys[table]; !ok {
		return t0, nil
	}
	full := t0.CloneSchema(table)
	for _, sh := range e.shards {
		frag := sh.Cat.Table(table)
		for ci, col := range frag.Cols {
			full.Cols[ci].AppendColumn(col)
		}
	}
	return full, nil
}

// InsertRows appends rows to a table, routing each row to its hash
// shard for partitioned tables. Only the shards whose fragments
// actually received rows have their statistics refreshed and their
// cached artifacts over the table invalidated — an insert that lands
// on two shards leaves the other shards' hash tables and indexes warm.
func (e *Engine) InsertRows(table string, rows [][]types.Value) error {
	key, partitioned := e.keys[table]
	if !partitioned {
		t := e.shards[0].Cat.Table(table)
		if t == nil {
			return fmt.Errorf("shard: unknown table %q", table)
		}
		for _, row := range rows {
			t.AppendRow(row...)
		}
		for _, sh := range e.shards {
			sh.Cat.Register(t) // recompute statistics
			sh.Cache.InvalidateTable(table)
		}
		return nil
	}
	t0 := e.shards[0].Cat.Table(table)
	if t0 == nil {
		return fmt.Errorf("shard: unknown table %q", table)
	}
	ki := t0.ColumnIndex(key)
	if ki < 0 {
		return fmt.Errorf("shard: table %q lost its partition-key column %q", table, key)
	}
	touched := make([]bool, len(e.shards))
	for _, row := range rows {
		s := storage.ShardOf(row[ki], len(e.shards))
		e.shards[s].Cat.Table(table).AppendRow(row...)
		touched[s] = true
	}
	for s, sh := range e.shards {
		if !touched[s] {
			continue
		}
		sh.Cat.Register(sh.Cat.Table(table))
		sh.Cache.InvalidateTable(table)
	}
	return nil
}

// BuildIndex builds a sorted storage index on every placement of the
// column (each fragment indexes its own rows; a replica indexes once).
func (e *Engine) BuildIndex(table, column string) error {
	if _, partitioned := e.keys[table]; !partitioned {
		t := e.shards[0].Cat.Table(table)
		if t == nil {
			return fmt.Errorf("shard: unknown table %q", table)
		}
		return t.BuildIndexOn(column)
	}
	for _, sh := range e.shards {
		t := sh.Cat.Table(table)
		if t == nil {
			return fmt.Errorf("shard: unknown table %q", table)
		}
		if err := t.BuildIndexOn(column); err != nil {
			return err
		}
	}
	return nil
}

// TableNames lists the tables (shard 0 sees every placement).
func (e *Engine) TableNames() []string { return e.shards[0].Cat.TableNames() }

// QueryCounts snapshots the per-shard query counters.
func (e *Engine) QueryCounts() []int64 {
	out := make([]int64, len(e.shards))
	for s, sh := range e.shards {
		out[s] = sh.Queries.Load()
	}
	return out
}

// Stats folds every shard's cache statistics into one aggregate and
// returns the per-shard breakdown alongside.
func (e *Engine) Stats() (htcache.Stats, []htcache.Stats) {
	per := make([]htcache.Stats, len(e.shards))
	var total htcache.Stats
	for s, sh := range e.shards {
		per[s] = sh.Cache.Stats()
		total = total.Add(per[s])
	}
	return total, per
}

// Clear evicts every shard cache.
func (e *Engine) Clear() {
	for _, sh := range e.shards {
		sh.Cache.Clear()
	}
}

// SetBudget splits a global cache budget evenly across the shard
// caches (0 = unlimited everywhere).
func (e *Engine) SetBudget(bytes int64) {
	per := bytes
	if per > 0 {
		per = bytes / int64(len(e.shards))
		if per < 1 {
			per = 1
		}
	}
	for _, sh := range e.shards {
		sh.Cache.SetBudget(per)
	}
}
