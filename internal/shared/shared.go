// Package shared implements multi-query reuse (Section 4 of the paper):
// reuse-aware shared plans over query batches. A batch is partitioned
// into groups by a dynamic-programming merge process; each multi-query
// group executes one shared plan built on the Data-Query model — shared
// scans evaluate every query's predicates in one pass and tag rows with
// query-id bitmasks, shared reuse-aware hash joins (SRHJ) carry the tags
// through qid-aware probes, and shared reuse-aware hash aggregates
// (SRHA) materialize the grouping phase as tagged tuples so each query's
// aggregates are computed from the shared grouping table.
//
// Cached shared tables are reused after re-tagging every stored tuple
// against the new batch's predicates (the correctness requirement the
// paper stresses: stale tags from recycled query IDs would corrupt
// results).
package shared

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hashstash/internal/expr"
	"hashstash/internal/optimizer"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Optimizer plans and runs query batches.
type Optimizer struct {
	Single *optimizer.Optimizer
}

// New wraps a single-query optimizer.
func New(single *optimizer.Optimizer) *Optimizer { return &Optimizer{Single: single} }

// BatchResult is the outcome of executing a batch.
type BatchResult struct {
	// Results holds one result per query, in input order.
	Results []*optimizer.Result
	// Groups records the merge configuration: each element is the list
	// of query indexes executed by one plan (len>1 → shared plan).
	Groups [][]int
}

// NumSharedPlans counts the executed plans (shared or single).
func (b *BatchResult) NumSharedPlans() int { return len(b.Groups) }

// mergeable reports whether two queries may share a plan: the paper
// requires identical join graphs. ORDER BY / LIMIT queries never merge —
// ordering and truncation are per-query properties the shared plan's
// qid-tagged union cannot express, so they run as singletons (which
// route through the single-query executor and its order/limit paths).
func mergeable(a, b *plan.Query) bool {
	ka, oka := ShapeKey(a)
	kb, okb := ShapeKey(b)
	return oka && okb && ka == kb
}

// ShapeKey classifies a query for batch admission: queries with equal
// keys are mergeable into one shared plan. The second return is false
// for queries that never merge (ORDER BY / LIMIT — ordering and
// truncation are per-query properties the qid-tagged union cannot
// express). The serving front-end keys its admission queues on this.
func ShapeKey(q *plan.Query) (string, bool) {
	if q.OrderBy != nil || q.Limit > 0 {
		return "", false
	}
	return q.JoinGraphSignature(), true
}

// SharingGain models the saving (ns) of executing k queries of q's
// shape as one shared plan instead of k solo plans: k times the single
// plan's estimated cost minus the shared plan's estimate over k copies.
// Negative or zero means modeled sharing does not pay. The serving
// front-end's admission policy gates batch windows on it.
func (s *Optimizer) SharingGain(q *plan.Query, k int) float64 {
	if k < 2 {
		return 0
	}
	if _, ok := ShapeKey(q); !ok {
		return 0
	}
	reader := s.Single.Cache.EnterReader()
	defer reader.Exit()
	p, err := s.Single.PlanQuery(q)
	if err != nil {
		return 0
	}
	copies := make([]*plan.Query, k)
	group := make([]int, k)
	for i := range copies {
		copies[i] = q
		group[i] = i
	}
	return float64(k)*p.EstimatedCost - s.sharedPlanCost(copies, group)
}

// configKey canonically encodes a merge configuration.
func configKey(groups [][]int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		s := make([]string, len(g))
		for j, q := range g {
			s[j] = fmt.Sprint(q)
		}
		parts[i] = strings.Join(s, "+")
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// PlanBatch runs the dynamic-programming merge process of Section 4.2:
// starting from the best configuration over the first k-1 queries, query
// k is either kept separate or merged into each existing compatible
// group; the cheapest configuration per level survives. Costs come from
// the single-query optimizer's estimates and the shared-plan cost model.
func (s *Optimizer) PlanBatch(queries []*plan.Query) ([][]int, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("shared: empty batch")
	}
	if len(queries) > 64 {
		return nil, fmt.Errorf("shared: batch of %d exceeds the 64-query tag limit", len(queries))
	}
	singleCost := make([]float64, len(queries))
	for i, q := range queries {
		p, err := s.Single.PlanQuery(q)
		if err != nil {
			return nil, fmt.Errorf("shared: query %d: %w", i, err)
		}
		singleCost[i] = p.EstimatedCost
	}

	best := [][]int{{0}}
	bestCost := singleCost[0]
	for k := 1; k < len(queries); k++ {
		// Alternative 1: Qk separate.
		cand := append(cloneGroups(best), []int{k})
		candCost := bestCost + singleCost[k]

		// Alternative 2..n: merge Qk into an existing group.
		for gi, g := range best {
			if !mergeable(queries[g[0]], queries[k]) {
				continue
			}
			merged := cloneGroups(best)
			merged[gi] = append(merged[gi], k)
			cost := 0.0
			for _, grp := range merged {
				cost += s.groupCost(queries, grp, singleCost)
			}
			if cost < candCost {
				cand, candCost = merged, cost
			}
		}
		best, bestCost = cand, candCost
	}
	return best, nil
}

func cloneGroups(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// groupCost estimates the runtime of executing a group with one plan.
func (s *Optimizer) groupCost(queries []*plan.Query, group []int, singleCost []float64) float64 {
	if len(group) == 1 {
		return singleCost[group[0]]
	}
	return s.sharedPlanCost(queries, group)
}

// sharedPlanCost models a shared plan: every relation is scanned fully
// once (shared scans evaluate all predicates in one pass), each join is
// paid once over the union of qualifying rows, and each query pays its
// own aggregation readout. The estimate deliberately mirrors the shape
// of the single-query model so the DP compares like with like.
func (s *Optimizer) sharedPlanCost(queries []*plan.Query, group []int) float64 {
	rep := queries[group[0]]
	o := s.Single
	var cost float64
	for _, rel := range rep.Relations {
		ts := o.Cat.Stats(rel.Table)
		if ts == nil {
			continue
		}
		cost += o.Model.ScanCost(float64(ts.Rows), 64)
	}
	// Join work: one pass over the hull of all queries' predicates.
	hull := hullFilter(queries, group)
	full := (1 << uint(len(rep.Relations))) - 1
	unionRows := o.EstimateMaskRows(rep, full, hull)
	cost += unionRows * 80 // per-row probe chain through the join spine
	// Per-query aggregation readout.
	for range group {
		cost += unionRows * 8
	}
	return cost
}

// hullFilter returns a filter box covering every query in the group
// (used only for cardinality estimation, so hull overclaim is fine).
func hullFilter(queries []*plan.Query, group []int) expr.Box {
	cols := map[storage.ColRef][]expr.Constraint{}
	for _, qi := range group {
		for _, p := range queries[qi].Filter {
			cols[p.Col] = append(cols[p.Col], p.Con)
		}
	}
	var preds []expr.Pred
	for col, cons := range cols {
		if len(cons) != len(group) {
			continue // some query leaves the column unconstrained
		}
		hull := cons[0]
		exact := true
		for _, c := range cons[1:] {
			h, ok := hullConstraint(hull, c)
			if !ok {
				exact = false
				break
			}
			hull = h
		}
		if exact {
			preds = append(preds, expr.Pred{Col: col, Con: hull})
		}
	}
	return expr.NewBox(preds...)
}

// hullConstraint is a permissive hull for estimation purposes.
func hullConstraint(a, b expr.Constraint) (expr.Constraint, bool) {
	if a.Kind != b.Kind {
		return expr.Constraint{}, false
	}
	if a.Kind == types.String {
		return expr.SetConstraint(append(append([]string{}, a.Set...), b.Set...)...), true
	}
	iv := a.Iv
	o := b.Iv
	if !o.HasLo {
		iv.HasLo = false
	} else if iv.HasLo && o.Lo.Compare(iv.Lo) < 0 {
		iv.Lo, iv.LoIncl = o.Lo, o.LoIncl
	}
	if !o.HasHi {
		iv.HasHi = false
	} else if iv.HasHi && o.Hi.Compare(iv.Hi) > 0 {
		iv.Hi, iv.HiIncl = o.Hi, o.HiIncl
	}
	return expr.Constraint{Kind: a.Kind, Iv: iv}, true
}

// RunBatch plans and executes a batch, returning per-query results in
// input order.
func (s *Optimizer) RunBatch(queries []*plan.Query) (*BatchResult, error) {
	return s.RunBatchContext(context.Background(), queries)
}

// RunBatchContext is RunBatch under a context: cancellation or
// deadline expiry aborts the in-flight group's morsel dispatch and the
// batch returns an error wrapping hashstasherr.ErrCanceled.
func (s *Optimizer) RunBatchContext(ctx context.Context, queries []*plan.Query) (*BatchResult, error) {
	// Plan as an epoch reader: merge costing resolves cached snapshots,
	// which stay unreclaimed (and, being frozen, immutable) until the
	// reader exits — concurrent widening queries publish successors
	// without disturbing this planning pass.
	reader := s.Single.Cache.EnterReader()
	groups, err := s.PlanBatch(queries)
	reader.Exit()
	if err != nil {
		return nil, err
	}
	out := &BatchResult{Results: make([]*optimizer.Result, len(queries)), Groups: groups}
	for _, g := range groups {
		if len(g) == 1 {
			res, err := s.Single.RunContext(ctx, queries[g[0]])
			if err != nil {
				return nil, fmt.Errorf("shared: query %d: %w", g[0], err)
			}
			out.Results[g[0]] = res
			continue
		}
		results, err := s.runSharedGroup(ctx, queries, g)
		if err != nil {
			return nil, err
		}
		for i, qi := range g {
			out.Results[qi] = results[i]
		}
	}
	return out, nil
}
