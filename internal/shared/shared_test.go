package shared

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hashstash/internal/catalog"
	"hashstash/internal/expr"
	"hashstash/internal/htcache"
	"hashstash/internal/optimizer"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/tpch"
	"hashstash/internal/types"
)

func newBatchEnv(t *testing.T) (*catalog.Catalog, *Optimizer) {
	t.Helper()
	db, err := tpch.Generate(tpch.Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	for _, tbl := range db.Tables() {
		cat.Register(tbl)
	}
	single := optimizer.New(cat, htcache.New(0), nil, optimizer.DefaultOptions())
	return cat, New(single)
}

func ref(a, c string) storage.ColRef { return storage.ColRef{Table: a, Column: c} }

func dateFilter(lo, hi string) expr.Box {
	iv := expr.Interval{}
	if lo != "" {
		iv.HasLo, iv.Lo, iv.LoIncl = true, types.NewDate(types.MustParseDate(lo)), true
	}
	if hi != "" {
		iv.HasHi, iv.Hi, iv.HiIncl = true, types.NewDate(types.MustParseDate(hi)), false
	}
	return expr.NewBox(expr.Pred{Col: ref("l", "l_shipdate"), Con: expr.IntervalConstraint(types.Date, iv)})
}

func aggQuery(lo, hi string) *plan.Query {
	return &plan.Query{
		Relations: []plan.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders"},
			{Alias: "l", Table: "lineitem"},
		},
		Joins: []plan.JoinPred{
			{Left: ref("c", "c_custkey"), Right: ref("o", "o_custkey")},
			{Left: ref("o", "o_orderkey"), Right: ref("l", "l_orderkey")},
		},
		Filter:  dateFilter(lo, hi),
		Select:  []storage.ColRef{ref("c", "c_age")},
		GroupBy: []storage.ColRef{ref("c", "c_age")},
		Aggs: []expr.AggSpec{
			{Func: expr.AggSum, Arg: &expr.Col{Ref: ref("l", "l_extendedprice")}, Alias: "revenue"},
		},
	}
}

func spjQ(lo, hi string) *plan.Query {
	return &plan.Query{
		Relations: []plan.Rel{{Alias: "o", Table: "orders"}, {Alias: "l", Table: "lineitem"}},
		Joins:     []plan.JoinPred{{Left: ref("o", "o_orderkey"), Right: ref("l", "l_orderkey")}},
		Filter:    dateFilter(lo, hi),
		Select:    []storage.ColRef{ref("o", "o_orderkey"), ref("l", "l_extendedprice")},
	}
}

func canonicalRows(r *optimizer.Result) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		var parts []string
		for _, v := range row {
			if v.Kind == types.Float64 {
				parts = append(parts, fmt.Sprintf("%.4f", v.F))
			} else {
				parts = append(parts, v.String())
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// assertBatchMatchesSingles runs a batch through the shared optimizer
// and each query individually through a never-reuse optimizer, and
// compares results.
func assertBatchMatchesSingles(t *testing.T, cat *catalog.Catalog, s *Optimizer, queries []*plan.Query) *BatchResult {
	t.Helper()
	batch, err := s.RunBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	never := optimizer.New(cat, htcache.New(0), nil, optimizer.Options{Strategy: optimizer.NeverReuse})
	for i, q := range queries {
		want, err := never.Run(q)
		if err != nil {
			t.Fatalf("single %d: %v", i, err)
		}
		got := batch.Results[i]
		if got == nil {
			t.Fatalf("query %d has no result", i)
		}
		cg, cw := canonicalRows(got), canonicalRows(want)
		if len(cg) != len(cw) {
			t.Fatalf("query %d: rows %d vs %d", i, len(cg), len(cw))
		}
		for j := range cg {
			if cg[j] != cw[j] {
				t.Fatalf("query %d row %d:\n  shared: %s\n  single: %s", i, j, cg[j], cw[j])
			}
		}
	}
	return batch
}

func TestMergeableAndConfigKey(t *testing.T) {
	a, b := aggQuery("1995-01-01", ""), aggQuery("1995-06-01", "")
	if !mergeable(a, b) {
		t.Error("same-join-graph queries should be mergeable")
	}
	if mergeable(a, spjQ("1995-01-01", "")) {
		t.Error("different join graphs should not be mergeable")
	}
	k1 := configKey([][]int{{0, 1}, {2}})
	k2 := configKey([][]int{{2}, {0, 1}})
	if k1 != k2 {
		t.Error("config key should be order independent")
	}
}

func TestPlanBatchMergesSameShape(t *testing.T) {
	_, s := newBatchEnv(t)
	queries := []*plan.Query{
		aggQuery("1995-01-01", "1995-07-01"),
		aggQuery("1995-03-01", "1995-09-01"),
		aggQuery("1995-05-01", "1995-11-01"),
		aggQuery("1995-02-01", "1995-08-01"),
	}
	groups, err := s.PlanBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 4 {
		t.Fatalf("groups cover %d queries: %v", total, groups)
	}
	// Same shape + heavy shared-scan savings: expect fewer plans than
	// queries.
	if len(groups) >= 4 {
		t.Errorf("no merging happened: %v", groups)
	}
}

func TestPlanBatchRejectsBadInput(t *testing.T) {
	_, s := newBatchEnv(t)
	if _, err := s.PlanBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]*plan.Query, 65)
	for i := range big {
		big[i] = aggQuery("1995-01-01", "")
	}
	if _, err := s.PlanBatch(big); err == nil {
		t.Error("65-query batch accepted")
	}
}

func TestSharedAggBatchCorrect(t *testing.T) {
	cat, s := newBatchEnv(t)
	queries := []*plan.Query{
		aggQuery("1995-01-01", "1995-07-01"),
		aggQuery("1995-03-01", "1995-09-01"),
		aggQuery("1995-02-01", "1995-06-01"),
	}
	batch := assertBatchMatchesSingles(t, cat, s, queries)
	if batch.NumSharedPlans() >= 3 {
		t.Logf("note: no merging chosen (groups=%v)", batch.Groups)
	}
}

func TestSharedSPJBatchCorrect(t *testing.T) {
	cat, s := newBatchEnv(t)
	queries := []*plan.Query{
		spjQ("1995-01-01", "1995-03-01"),
		spjQ("1995-02-01", "1995-04-01"),
	}
	assertBatchMatchesSingles(t, cat, s, queries)
}

func TestSharedMixedShapesSplit(t *testing.T) {
	cat, s := newBatchEnv(t)
	queries := []*plan.Query{
		aggQuery("1995-01-01", "1995-07-01"),
		spjQ("1995-01-01", "1995-02-01"),
		aggQuery("1995-02-01", "1995-08-01"),
	}
	batch := assertBatchMatchesSingles(t, cat, s, queries)
	// The SPJ query must sit in its own group.
	for _, g := range batch.Groups {
		hasSPJ, hasAgg := false, false
		for _, qi := range g {
			if queries[qi].IsAggregate() {
				hasAgg = true
			} else {
				hasSPJ = true
			}
		}
		if hasSPJ && hasAgg {
			t.Fatalf("mixed group: %v", batch.Groups)
		}
	}
}

func TestSharedGroupingReuseAcrossBatches(t *testing.T) {
	cat, s := newBatchEnv(t)
	queries := []*plan.Query{
		aggQuery("1995-01-01", "1995-07-01"),
		aggQuery("1995-02-01", "1995-08-01"),
	}
	assertBatchMatchesSingles(t, cat, s, queries)
	before := s.Single.Cache.Stats().Hits

	// A second batch whose predicates are covered by the first batch's
	// hull ([01-01, 08-01)) — the grouping table should be re-tagged and
	// reused.
	queries2 := []*plan.Query{
		aggQuery("1995-02-01", "1995-05-01"),
		aggQuery("1995-03-01", "1995-06-01"),
	}
	assertBatchMatchesSingles(t, cat, s, queries2)
	if s.Single.Cache.Stats().Hits <= before {
		t.Error("no shared-table reuse across batches")
	}
}

func TestQueryIDRecyclingIsSafe(t *testing.T) {
	// The correctness hazard the paper calls out: query IDs are recycled
	// between batches. Batch 1 tags with queries A0,A1; batch 2 reuses
	// the table with different predicates under the same bit positions.
	// Results must reflect ONLY the new batch's predicates.
	cat, s := newBatchEnv(t)
	b1 := []*plan.Query{
		aggQuery("1995-01-01", "1995-09-01"),
		aggQuery("1995-02-01", "1995-08-01"),
	}
	assertBatchMatchesSingles(t, cat, s, b1)
	// Swap the bit-position semantics: bit 0 now has a *narrower* range.
	b2 := []*plan.Query{
		aggQuery("1995-04-01", "1995-05-01"),
		aggQuery("1995-03-01", "1995-07-01"),
	}
	assertBatchMatchesSingles(t, cat, s, b2)
}

func TestHullFilterEstimation(t *testing.T) {
	queries := []*plan.Query{
		aggQuery("1995-01-01", "1995-03-01"),
		aggQuery("1995-02-01", "1995-05-01"),
	}
	hull := hullFilter(queries, []int{0, 1})
	con, ok := hull.Constraint(storage.ColRef{Table: "l", Column: "l_shipdate"})
	if !ok {
		t.Fatalf("hull lost the date constraint: %v", hull)
	}
	if !con.Iv.HasLo || con.Iv.Lo.I != types.MustParseDate("1995-01-01") {
		t.Errorf("hull lo = %v", con.Iv)
	}
	if !con.Iv.HasHi || con.Iv.Hi.I != types.MustParseDate("1995-05-01") {
		t.Errorf("hull hi = %v", con.Iv)
	}
}
