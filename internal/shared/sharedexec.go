package shared

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"hashstash/hashstasherr"
	"hashstash/internal/exec"
	"hashstash/internal/expr"
	"hashstash/internal/hashtable"
	"hashstash/internal/htcache"
	"hashstash/internal/optimizer"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// groupExec compiles and runs one shared plan for a group of mergeable
// queries. Bit i of every qid mask corresponds to the group's i-th
// query.
type groupExec struct {
	s       *Optimizer
	rep     *plan.Query   // representative: supplies aliases & join tree
	queries []*plan.Query // the group's queries (≤64)

	needed    map[string][]string // union of needed columns per rep alias
	pipelines []*exec.Pipeline
	pinned    []*htcache.Entry
	created   []*htcache.Entry
	// retagged are the private widened copies this batch re-tagged; the
	// overlay qid columns they carry are batch-local and reclaimed
	// eagerly once the pipelines drain.
	retagged []*hashtable.Table
	collects []*exec.Collect // one per query (aggregate path)
	spineOut *exec.Collect   // SPJ path: shared output split by qid
	columns  [][]string
	reused   int // shared tables reused (after re-tag)
}

// runSharedGroup executes queries[group...] with one shared plan,
// fully concurrent with other queries: a reused cached table is
// widened into a private copy-on-write successor and re-tagged there
// (qid masks install as an overlay column), so the batch's tags never
// touch the published snapshot other queries are probing. The group
// registers as an epoch reader for its lifetime, keeping every
// snapshot it resolved alive until its pipelines drain.
func (s *Optimizer) runSharedGroup(ctx context.Context, queries []*plan.Query, group []int) (res []*optimizer.Result, err error) {
	reader := s.Single.Cache.EnterReader()
	defer reader.Exit()
	g := &groupExec{s: s, rep: queries[group[0]]}
	// Panic boundary for the group's caller-goroutine work (planning,
	// compilation, result collection; pipeline panics are already
	// contained by the scheduler): unwind the group's pins so one
	// poisoned shared plan fails only its batch — the server then
	// degrades the members to solo.
	defer func() {
		if r := recover(); r != nil {
			g.discardAll()
			res, err = nil, hashstasherr.Internal("shared.group", r)
		}
	}()
	for _, qi := range group {
		g.queries = append(g.queries, queries[qi])
	}
	g.computeNeeded()

	// The shared plan borrows the join-tree shape from the single-query
	// enumerator. The pass runs with never-reuse over an empty cache so
	// every node carries a full build subtree — the shared operators
	// make their own reuse decisions over qid-tagged tables.
	treePlanner := optimizer.New(s.Single.Cat, htcache.New(0), s.Single.Model,
		optimizer.Options{Strategy: optimizer.NeverReuse, BenefitOriented: true})
	tree, err := treePlanner.PlanSPJ(g.rep)
	if err != nil {
		return nil, err
	}
	if err := g.compileRoot(tree); err != nil {
		g.discardAll()
		return nil, err
	}

	// Shared-plan pipelines parallelize like single-query ones: shared
	// scans split into morsels and build sinks merge per-worker partial
	// tables. The workers only mutate the group's own (fresh or widened,
	// both private) tables, so no cross-query coordination is needed.
	// Multi-sink grouping spines split like ordinary scans (every child
	// sink merges per-worker partials), and the per-query readout
	// pipelines — independent in the pipeline DAG — run concurrently
	// once their grouping table's build finishes.
	t0 := time.Now()
	runErr := exec.RunParallel(g.pipelines, exec.Parallelism{
		Workers:         s.Single.Opts.Parallelism,
		MorselRows:      s.Single.Opts.MorselRows,
		SerialPipelines: s.Single.Opts.SerialPipelines,
		NoSteal:         s.Single.Opts.NoSteal,
		Ctx:             ctx,
	})
	elapsed := time.Since(t0)
	if runErr != nil {
		// A contained panic while the shared plan probed cached
		// snapshots: quarantine the pinned artifacts, same blame rule as
		// the solo path (see optimizer.Prepared.Finish).
		var ie *hashstasherr.InternalError
		if errors.As(runErr, &ie) {
			for _, e := range g.pinned {
				s.Single.Cache.Quarantine(e)
			}
		}
		g.discardAll()
		return nil, runErr
	}
	// Nothing reads the batch-local qid tags after the pipelines drain
	// (results live in the collect sinks), so the overlay columns on
	// re-tagged widened copies — one uint64 per slot — are reclaimed
	// now instead of when the whole copy becomes garbage.
	for _, ht := range g.retagged {
		ht.DropOverlay()
	}
	g.releaseAll()
	return g.collectResults(elapsed)
}

func (g *groupExec) releaseAll() {
	for _, e := range g.pinned {
		g.s.Single.Cache.Release(e)
	}
	for _, e := range g.created {
		g.s.Single.Cache.Release(e)
	}
	g.pinned, g.created = nil, nil
}

// discardAll unwinds a failed compile or run: reused entries are
// unpinned, but freshly created (half-built) tables are removed from
// the cache instead of being published as reuse candidates.
func (g *groupExec) discardAll() {
	for _, e := range g.pinned {
		g.s.Single.Cache.Release(e)
	}
	for _, e := range g.created {
		g.s.Single.Cache.Abandon(e)
	}
	// Idempotent: the panic boundary may run after a release path
	// already unwound the group.
	g.pinned, g.created = nil, nil
}

// aliasOf maps a base table to the representative's alias.
func (g *groupExec) aliasOf(table string) string {
	for _, r := range g.rep.Relations {
		if r.Table == table {
			return r.Alias
		}
	}
	return table
}

// queryBoxBase returns query i's full filter, base-qualified.
func (g *groupExec) queryBoxBase(i int) expr.Box {
	return g.queries[i].BaseQualify(g.queries[i].Filter)
}

// relBoxes returns, per query, the base-qualified predicates on the
// masked relations (rep-relative mask).
func (g *groupExec) relBoxes(mask int) []expr.Box {
	out := make([]expr.Box, len(g.queries))
	tables := map[string]bool{}
	for i, rel := range g.rep.Relations {
		if mask&(1<<uint(i)) != 0 {
			tables[rel.Table] = true
		}
	}
	for qi := range g.queries {
		var preds []expr.Pred
		for _, p := range g.queryBoxBase(qi) {
			if tables[p.Col.Table] {
				preds = append(preds, p)
			}
		}
		out[qi] = expr.NewBox(preds...)
	}
	return out
}

// aliasBoxes re-qualifies base boxes to the representative's aliases.
func (g *groupExec) aliasBoxes(boxes []expr.Box) []expr.Box {
	out := make([]expr.Box, len(boxes))
	for i, b := range boxes {
		out[i] = g.rep.AliasQualify(b)
	}
	return out
}

// computeNeeded unions the needed columns of every query in the group:
// join keys, selects, group-bys, aggregate arguments and all selection
// attributes (mandatory in shared plans — re-tagging needs them).
func (g *groupExec) computeNeeded() {
	set := map[string]map[string]bool{}
	add := func(table, col string) {
		if set[table] == nil {
			set[table] = map[string]bool{}
		}
		set[table][col] = true
	}
	addRef := func(q *plan.Query, ref storage.ColRef) {
		if rel := q.RelByAlias(ref.Table); rel != nil {
			add(rel.Table, ref.Column)
		}
	}
	for _, q := range g.queries {
		for _, j := range q.Joins {
			addRef(q, j.Left)
			addRef(q, j.Right)
		}
		for _, s := range q.Select {
			addRef(q, s)
		}
		for _, gb := range q.GroupBy {
			addRef(q, gb)
		}
		for _, a := range q.Aggs {
			if a.Arg != nil {
				a.Arg.Walk(func(r storage.ColRef) { addRef(q, r) })
			}
		}
		for _, p := range q.Filter {
			addRef(q, p.Col)
		}
	}
	g.needed = map[string][]string{}
	for _, rel := range g.rep.Relations {
		cols := make([]string, 0, len(set[rel.Table]))
		for c := range set[rel.Table] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		if len(cols) == 0 {
			tbl := g.s.Single.Cat.Table(rel.Table)
			if tbl != nil && len(tbl.Cols) > 0 {
				cols = []string{tbl.Cols[0].Name}
			}
		}
		g.needed[rel.Alias] = cols
	}
}

// compileStream lowers the borrowed join tree into shared pipelines.
func (g *groupExec) compileStream(n *optimizer.Node) (exec.Source, []exec.Transform, storage.Schema, error) {
	if n.IsScan() {
		rel := g.rep.Relations[n.RelIdx]
		boxes := g.aliasBoxes(g.relBoxes(1 << uint(n.RelIdx)))
		src, err := exec.NewSharedScan(g.s.Single.Cat.Table(rel.Table), rel.Alias, boxes, g.needed[rel.Alias])
		if err != nil {
			return nil, nil, nil, err
		}
		return src, nil, src.Schema(), nil
	}

	ht, emitCols, emitRefs, qidLayoutCol, err := g.obtainSharedJoinHT(n)
	if err != nil {
		return nil, nil, nil, err
	}
	src, tfs, schema, err := g.compileStream(n.Probe)
	if err != nil {
		return nil, nil, nil, err
	}
	probe, err := exec.NewProbe(ht, n.ProbeKeys, emitCols, emitRefs, nil, schema)
	if err != nil {
		return nil, nil, nil, err
	}
	probe.QidCol = qidLayoutCol
	probe.QidInCol = schema.IndexOf(exec.QidRef())
	if probe.QidInCol < 0 {
		return nil, nil, nil, fmt.Errorf("shared: probe input lacks qid column")
	}
	tfs = append(tfs, probe)
	return src, tfs, probe.OutSchema(), nil
}

// sharedLayout builds the layout of a shared join table for a build
// mask: key columns, needed payload columns, then the qid tag.
func (g *groupExec) sharedLayout(n *optimizer.Node) (hashtable.Layout, error) {
	keysBase := baseRefs(g.rep, n.BuildKeys)
	var cols []storage.ColMeta
	seen := map[storage.ColRef]bool{}
	add := func(ref storage.ColRef) error {
		if seen[ref] {
			return nil
		}
		seen[ref] = true
		kind, err := g.s.Single.Cat.Resolve(ref.Table, ref.Column)
		if err != nil {
			return err
		}
		cols = append(cols, storage.ColMeta{Ref: ref, Kind: kind})
		return nil
	}
	nKeys := 0
	for _, k := range keysBase {
		if !seen[k] {
			nKeys++
		}
		if err := add(k); err != nil {
			return hashtable.Layout{}, err
		}
	}
	for i, rel := range g.rep.Relations {
		if n.BuildMask&(1<<uint(i)) == 0 {
			continue
		}
		for _, c := range g.needed[rel.Alias] {
			if err := add(storage.ColRef{Table: rel.Table, Column: c}); err != nil {
				return hashtable.Layout{}, err
			}
		}
	}
	cols = append(cols, storage.ColMeta{Ref: exec.QidRef(), Kind: types.Int64})
	return hashtable.Layout{Cols: cols, KeyCols: nKeys}, nil
}

// obtainSharedJoinHT reuses a cached qid-tagged table (after re-tagging)
// or builds a fresh one from a shared sub-stream.
func (g *groupExec) obtainSharedJoinHT(n *optimizer.Node) (*hashtable.Table, []int, []storage.ColRef, int, error) {
	cache := g.s.Single.Cache
	keysBase := baseRefs(g.rep, n.BuildKeys)
	probeLin := htcache.Lineage{
		Kind:    htcache.SharedJoinBuild,
		JoinSig: g.rep.SubgraphSignature(n.BuildMask),
		KeyCols: keysBase,
	}
	relBoxes := g.relBoxes(n.BuildMask)

	var ht *hashtable.Table
	qidCol := -1
	for _, cand := range cache.Candidates(probeLin) {
		snap := cand.Current()
		if !g.sharedCandidateUsable(snap, cand.Lineage.QidCol, n, relBoxes) {
			continue
		}
		// Re-tag a private widened copy: the qid masks of this batch are
		// batch-local, so the published snapshot stays untouched (and the
		// copy is simply dropped after the batch — no publication).
		widened := snap.HT.WidenWith(g.s.Single.WidenOptions())
		if err := exec.ReTag(widened, cand.Lineage.QidCol, relBoxes); err != nil {
			continue
		}
		cache.Pin(cand)
		g.pinned = append(g.pinned, cand)
		g.retagged = append(g.retagged, widened)
		ht = widened
		qidCol = cand.Lineage.QidCol
		g.reused++
		break
	}

	if ht == nil {
		layout, err := g.sharedLayout(n)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		ht = hashtable.New(layout)
		qidCol = len(layout.Cols) - 1
		bsrc, btfs, bschema, err := g.compileStream(n.Build)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		feed := make([]storage.ColRef, len(layout.Cols))
		for i, m := range layout.Cols {
			if m.Ref == exec.QidRef() {
				feed[i] = exec.QidRef()
				continue
			}
			feed[i] = storage.ColRef{Table: g.aliasOf(m.Ref.Table), Column: m.Ref.Column}
		}
		sink, err := exec.NewBuildHT(ht, bschema, feed)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		g.pipelines = append(g.pipelines, &exec.Pipeline{Source: bsrc, Transforms: btfs, Sink: sink})
		// Register only when the content (union of the group's boxes) is
		// exactly expressible — lineage must never overclaim.
		if hull, ok := boxesUnion(relBoxes); ok {
			lin := probeLin
			lin.Tables = maskTableNames(g.rep, n.BuildMask)
			lin.Filter = hull
			lin.QidCol = qidCol
			g.created = append(g.created, cache.Register(ht, lin))
		}
	}

	// Probe emits every needed build-side column (base refs → rep alias).
	layout := ht.Layout()
	var emitCols []int
	var emitRefs []storage.ColRef
	for i, rel := range g.rep.Relations {
		if n.BuildMask&(1<<uint(i)) == 0 {
			continue
		}
		for _, c := range g.needed[rel.Alias] {
			ref := storage.ColRef{Table: rel.Table, Column: c}
			ci := layout.ColIndex(ref)
			if ci < 0 {
				return nil, nil, nil, 0, fmt.Errorf("shared: column %v missing from shared table", ref)
			}
			emitCols = append(emitCols, ci)
			emitRefs = append(emitRefs, storage.ColRef{Table: rel.Alias, Column: c})
		}
	}
	return ht, emitCols, emitRefs, qidCol, nil
}

// sharedCandidateUsable checks content and layout sufficiency against
// one resolved snapshot: the cached table must be qid-tagged, hold a
// superset of every query's needed rows, store every needed payload
// column, and store every predicate column (for re-tagging).
func (g *groupExec) sharedCandidateUsable(snap *htcache.Snapshot, qidCol int, n *optimizer.Node, relBoxes []expr.Box) bool {
	if qidCol < 0 || snap == nil || snap.HT == nil {
		return false
	}
	layout := snap.HT.Layout()
	for _, b := range relBoxes {
		if !snap.Filter.Covers(b) {
			return false
		}
		for _, p := range b {
			if layout.ColIndex(p.Col) < 0 {
				return false
			}
		}
	}
	for i, rel := range g.rep.Relations {
		if n.BuildMask&(1<<uint(i)) == 0 {
			continue
		}
		for _, c := range g.needed[rel.Alias] {
			if layout.ColIndex(storage.ColRef{Table: rel.Table, Column: c}) < 0 {
				return false
			}
		}
	}
	return true
}

// boxesUnion folds boxes pairwise with unionIfBox semantics.
func boxesUnion(boxes []expr.Box) (expr.Box, bool) {
	if len(boxes) == 0 {
		return nil, true
	}
	hull := boxes[0]
	for _, b := range boxes[1:] {
		h, ok := expr.UnionIfBox(hull, b)
		if !ok {
			return nil, false
		}
		hull = h
	}
	return hull, true
}

func maskTableNames(q *plan.Query, mask int) []string {
	var out []string
	for i, rel := range q.Relations {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, rel.Table)
		}
	}
	return out
}

func baseRefs(q *plan.Query, refs []storage.ColRef) []storage.ColRef {
	out := make([]storage.ColRef, len(refs))
	for i, r := range refs {
		table := r.Table
		if rel := q.RelByAlias(r.Table); rel != nil {
			table = rel.Table
		}
		out[i] = storage.ColRef{Table: table, Column: r.Column}
	}
	return out
}
