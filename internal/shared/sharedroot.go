package shared

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hashstash/internal/exec"
	"hashstash/internal/expr"
	"hashstash/internal/hashtable"
	"hashstash/internal/htcache"
	"hashstash/internal/optimizer"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// aggGroup is a set of group-queries sharing one grouping table (same
// group-by keys, per Section 4.1: aggregation operators with the same
// group-by keys are shared).
type aggGroup struct {
	queryIdx []int            // indexes into groupExec.queries
	keys     []storage.ColRef // base-qualified group-by columns
	rawCols  []storage.ColRef // base-qualified columns feeding any aggregate
	grouping *hashtable.Table // SRHA grouping-phase table (tuples + qid)
	qidCol   int              // layout position of the qid column
	reuse    bool             // grouping table reused from the cache
}

// groupKeySig canonically identifies a group-by column set.
func groupKeySig(keys []storage.ColRef) string {
	s := make([]string, len(keys))
	for i, k := range keys {
		s[i] = k.String()
	}
	sort.Strings(s)
	return strings.Join(s, ",")
}

// compileRoot wires the shared spine into grouping tables (SRHA) and
// per-query aggregation readouts, or — for SPJ batches — into one
// collected output split by qid afterwards.
func (g *groupExec) compileRoot(tree *optimizer.Node) error {
	anyAgg := false
	for _, q := range g.queries {
		if q.IsAggregate() {
			anyAgg = true
		}
	}
	if !anyAgg {
		return g.compileSPJBatch(tree)
	}
	for _, q := range g.queries {
		if !q.IsAggregate() {
			return fmt.Errorf("shared: mixed SPJ/SPJA batches are not mergeable")
		}
	}

	groups, err := g.formAggGroups()
	if err != nil {
		return err
	}
	// Try to reuse a cached grouping table per agg group.
	needSpine := false
	for _, ag := range groups {
		if !g.tryReuseGrouping(ag) {
			needSpine = true
		}
	}

	if needSpine {
		src, tfs, schema, err := g.compileStream(tree)
		if err != nil {
			return err
		}
		var sinks []exec.Sink
		for _, ag := range groups {
			if ag.reuse {
				continue
			}
			if err := g.createGroupingTable(ag); err != nil {
				return err
			}
			sink, err := g.groupingSink(ag, schema)
			if err != nil {
				return err
			}
			sinks = append(sinks, sink)
		}
		g.pipelines = append(g.pipelines, &exec.Pipeline{
			Source: src, Transforms: tfs, Sink: &exec.Multi{Sinks: sinks},
		})
	}

	// Per-query aggregation over its grouping table.
	g.collects = make([]*exec.Collect, len(g.queries))
	g.columns = make([][]string, len(g.queries))
	for _, ag := range groups {
		for bit, qi := range ag.queryIdx {
			_ = bit
			if err := g.compileQueryReadout(ag, qi); err != nil {
				return err
			}
		}
	}
	return nil
}

// formAggGroups partitions the group's queries by group-by key set.
func (g *groupExec) formAggGroups() ([]*aggGroup, error) {
	bySig := map[string]*aggGroup{}
	var order []string
	for qi, q := range g.queries {
		keys := baseRefs(q, q.GroupBy)
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		sig := groupKeySig(keys)
		ag, ok := bySig[sig]
		if !ok {
			ag = &aggGroup{keys: keys, qidCol: -1}
			bySig[sig] = ag
			order = append(order, sig)
		}
		ag.queryIdx = append(ag.queryIdx, qi)
		for _, s := range q.Aggs {
			if s.Arg == nil {
				continue
			}
			arg := baseQualifyExprShared(q, s.Arg)
			arg.Walk(func(r storage.ColRef) {
				for _, have := range ag.rawCols {
					if have == r {
						return
					}
				}
				ag.rawCols = append(ag.rawCols, r)
			})
		}
	}
	var out []*aggGroup
	for _, sig := range order {
		ag := bySig[sig]
		sort.Slice(ag.rawCols, func(i, j int) bool { return ag.rawCols[i].String() < ag.rawCols[j].String() })
		out = append(out, ag)
	}
	return out, nil
}

// groupingLayout: group keys, raw aggregate inputs, every filter column
// (re-tag needs them), then the qid tag. Entries are individual tuples
// (Insert, not Upsert): the grouping phase output of the paper's SRHA.
func (g *groupExec) groupingLayout(ag *aggGroup) (hashtable.Layout, error) {
	var cols []storage.ColMeta
	seen := map[storage.ColRef]bool{}
	add := func(ref storage.ColRef) error {
		if seen[ref] {
			return nil
		}
		seen[ref] = true
		kind, err := g.s.Single.Cat.Resolve(ref.Table, ref.Column)
		if err != nil {
			return err
		}
		cols = append(cols, storage.ColMeta{Ref: ref, Kind: kind})
		return nil
	}
	nKeys := 0
	for _, k := range ag.keys {
		if !seen[k] {
			nKeys++
		}
		if err := add(k); err != nil {
			return hashtable.Layout{}, err
		}
	}
	for _, r := range ag.rawCols {
		if err := add(r); err != nil {
			return hashtable.Layout{}, err
		}
	}
	for qi := range g.queries {
		for _, p := range g.queryBoxBase(qi) {
			if err := add(p.Col); err != nil {
				return hashtable.Layout{}, err
			}
		}
	}
	cols = append(cols, storage.ColMeta{Ref: exec.QidRef(), Kind: types.Int64})
	return hashtable.Layout{Cols: cols, KeyCols: nKeys}, nil
}

func (g *groupExec) createGroupingTable(ag *aggGroup) error {
	layout, err := g.groupingLayout(ag)
	if err != nil {
		return err
	}
	ag.grouping = hashtable.New(layout)
	ag.qidCol = len(layout.Cols) - 1

	// Register when the union of the group's full filters is exact.
	var boxes []expr.Box
	for qi := range g.queries {
		boxes = append(boxes, g.queryBoxBase(qi))
	}
	if hull, ok := boxesUnion(boxes); ok {
		lin := htcache.Lineage{
			Kind:    htcache.SharedGrouping,
			Tables:  maskTableNames(g.rep, (1<<uint(len(g.rep.Relations)))-1),
			JoinSig: g.rep.JoinGraphSignature(),
			Filter:  hull,
			KeyCols: ag.keys,
			GroupBy: ag.keys,
			QidCol:  ag.qidCol,
		}
		g.created = append(g.created, g.s.Single.Cache.Register(ag.grouping, lin))
	}
	return nil
}

// tryReuseGrouping looks for a cached SRHA grouping table with the same
// structure whose content covers every query; on success it re-tags it.
func (g *groupExec) tryReuseGrouping(ag *aggGroup) bool {
	cache := g.s.Single.Cache
	probeLin := htcache.Lineage{
		Kind:    htcache.SharedGrouping,
		JoinSig: g.rep.JoinGraphSignature(),
		KeyCols: ag.keys,
		GroupBy: ag.keys,
	}
	var boxes []expr.Box
	for qi := range g.queries {
		boxes = append(boxes, g.queryBoxBase(qi))
	}
	for _, cand := range cache.Candidates(probeLin) {
		if cand.Lineage.QidCol < 0 {
			continue
		}
		snap := cand.Current()
		if snap == nil || snap.HT == nil {
			continue // demoted to the cold tier since Candidates listed it
		}
		layout := snap.HT.Layout()
		usable := true
		for _, b := range boxes {
			if !snap.Filter.Covers(b) {
				usable = false
				break
			}
			for _, p := range b {
				if layout.ColIndex(p.Col) < 0 {
					usable = false
					break
				}
			}
		}
		for _, r := range ag.rawCols {
			if layout.ColIndex(r) < 0 {
				usable = false
			}
		}
		for _, k := range ag.keys {
			if layout.ColIndex(k) < 0 {
				usable = false
			}
		}
		if !usable {
			continue
		}
		// Re-tag a private widened copy (batch-local qid masks install
		// as an overlay); the published snapshot stays untouched and the
		// copy is dropped after the batch.
		widened := snap.HT.WidenWith(g.s.Single.WidenOptions())
		if err := exec.ReTag(widened, cand.Lineage.QidCol, boxes); err != nil {
			continue
		}
		cache.Pin(cand)
		g.pinned = append(g.pinned, cand)
		g.retagged = append(g.retagged, widened)
		ag.grouping = widened
		ag.qidCol = cand.Lineage.QidCol
		ag.reuse = true
		g.reused++
		return true
	}
	return false
}

// groupingSink feeds the shared spine output into the grouping table.
func (g *groupExec) groupingSink(ag *aggGroup, schema storage.Schema) (exec.Sink, error) {
	layout := ag.grouping.Layout()
	feed := make([]storage.ColRef, len(layout.Cols))
	for i, m := range layout.Cols {
		if m.Ref == exec.QidRef() {
			feed[i] = exec.QidRef()
			continue
		}
		feed[i] = storage.ColRef{Table: g.aliasOf(m.Ref.Table), Column: m.Ref.Column}
	}
	return exec.NewBuildHT(ag.grouping, schema, feed)
}

// compileQueryReadout aggregates one query's answer from its grouping
// table: scan entries with the query's qid bit, compute its aggregate
// arguments, fold into a per-query result table, then project.
func (g *groupExec) compileQueryReadout(ag *aggGroup, qi int) error {
	q := g.queries[qi]
	layout := ag.grouping.Layout()

	// Columns to read: group keys + this query's raw columns.
	var outCols []int
	var outRefs []storage.ColRef
	read := map[storage.ColRef]bool{}
	addRead := func(ref storage.ColRef) error {
		if read[ref] {
			return nil
		}
		read[ref] = true
		ci := layout.ColIndex(ref)
		if ci < 0 {
			return fmt.Errorf("shared: column %v missing from grouping table", ref)
		}
		outCols = append(outCols, ci)
		outRefs = append(outRefs, ref)
		return nil
	}
	for _, k := range ag.keys {
		if err := addRead(k); err != nil {
			return err
		}
	}
	specs, srcIdx := expr.RewriteAvg(q.Aggs)
	specsBase := make([]expr.AggSpec, len(specs))
	for i, s := range specs {
		specsBase[i] = s
		if s.Arg != nil {
			specsBase[i].Arg = baseQualifyExprShared(q, s.Arg)
			var werr error
			specsBase[i].Arg.Walk(func(r storage.ColRef) {
				if err := addRead(r); err != nil && werr == nil {
					werr = err
				}
			})
			if werr != nil {
				return werr
			}
		}
	}

	src, err := exec.NewHTScan(ag.grouping, outCols, outRefs, nil)
	if err != nil {
		return err
	}
	src.QidCol = ag.qidCol
	src.QidMask = 1 << uint(qi)
	schema := src.Schema()
	var tfs []exec.Transform

	// Result table: group keys + one cell per rewritten spec.
	var resCols []storage.ColMeta
	for _, k := range ag.keys {
		kind, err := g.s.Single.Cat.Resolve(k.Table, k.Column)
		if err != nil {
			return err
		}
		resCols = append(resCols, storage.ColMeta{Ref: k, Kind: kind})
	}
	cells := make([]exec.AggCell, len(specsBase))
	for i, s := range specsBase {
		kind := cellKind(g, s)
		resCols = append(resCols, storage.ColMeta{Ref: storage.ColRef{Column: s.Name()}, Kind: kind})
		if s.Arg == nil {
			cells[i] = exec.AggCell{Func: s.Func, InCol: -1, Kind: kind}
			continue
		}
		if col, ok := s.Arg.(*expr.Col); ok {
			if j := schema.IndexOf(col.Ref); j >= 0 {
				cells[i] = exec.AggCell{Func: s.Func, InCol: j, Kind: kind}
				continue
			}
		}
		ref := storage.ColRef{Column: fmt.Sprintf("_sagg%d", i)}
		comp := exec.NewCompute(s.Arg, ref, schema)
		tfs = append(tfs, comp)
		schema = comp.OutSchema()
		cells[i] = exec.AggCell{Func: s.Func, InCol: schema.IndexOf(ref), Kind: kind}
	}
	resHT := hashtable.New(hashtable.Layout{Cols: resCols, KeyCols: len(ag.keys)})
	sink, err := exec.NewAggHT(resHT, ag.keys, cells, schema)
	if err != nil {
		return err
	}
	g.pipelines = append(g.pipelines, &exec.Pipeline{Source: src, Transforms: tfs, Sink: sink})

	// Final readout of the per-query result table.
	fsrc, err := exec.NewHTScan(resHT, identityCols(len(resCols)), nil, nil)
	if err != nil {
		return err
	}
	fschema := fsrc.Schema()
	var ftfs []exec.Transform
	finalAggRefs := make([]storage.ColRef, len(q.Aggs))
	for i, orig := range q.Aggs {
		si, ci := srcIdx[i][0], srcIdx[i][1]
		if orig.Func == expr.AggAvg && si != ci {
			ref := storage.ColRef{Column: fmt.Sprintf("_savg%d", i)}
			div := &expr.Bin{Op: expr.OpDiv,
				L: &expr.Col{Ref: storage.ColRef{Column: specsBase[si].Name()}},
				R: &expr.Col{Ref: storage.ColRef{Column: specsBase[ci].Name()}},
			}
			comp := exec.NewCompute(div, ref, fschema)
			ftfs = append(ftfs, comp)
			fschema = comp.OutSchema()
			finalAggRefs[i] = ref
		} else {
			finalAggRefs[i] = storage.ColRef{Column: specsBase[si].Name()}
		}
	}
	var cols []int
	var names []string
	for _, sel := range q.Select {
		base := baseRefs(q, []storage.ColRef{sel})[0]
		j := fschema.IndexOf(base)
		if j < 0 {
			return fmt.Errorf("shared: select column %v not in readout", sel)
		}
		cols = append(cols, j)
		names = append(names, sel.String())
	}
	for i, orig := range q.Aggs {
		j := fschema.IndexOf(finalAggRefs[i])
		if j < 0 {
			return fmt.Errorf("shared: aggregate %v not in readout", finalAggRefs[i])
		}
		cols = append(cols, j)
		names = append(names, orig.Name())
	}
	proj, err := exec.NewProject(cols, nil, fschema)
	if err != nil {
		return err
	}
	ftfs = append(ftfs, proj)
	collect := exec.NewCollect(proj.OutSchema())
	g.pipelines = append(g.pipelines, &exec.Pipeline{Source: fsrc, Transforms: ftfs, Sink: collect})
	g.collects[qi] = collect
	g.columns[qi] = names
	return nil
}

func cellKind(g *groupExec, s expr.AggSpec) types.Kind {
	switch s.Func {
	case expr.AggCount:
		return types.Int64
	case expr.AggSum, expr.AggAvg:
		return types.Float64
	}
	if col, ok := s.Arg.(*expr.Col); ok {
		if k, err := g.s.Single.Cat.Resolve(col.Ref.Table, col.Ref.Column); err == nil {
			if k == types.Date {
				return types.Int64
			}
			return k
		}
	}
	return types.Float64
}

// compileSPJBatch runs the shared spine once and splits rows per query
// afterwards (Data-Query model output splitting).
func (g *groupExec) compileSPJBatch(tree *optimizer.Node) error {
	src, tfs, schema, err := g.compileStream(tree)
	if err != nil {
		return err
	}
	collect := exec.NewCollect(schema)
	g.pipelines = append(g.pipelines, &exec.Pipeline{Source: src, Transforms: tfs, Sink: collect})
	g.spineOut = collect
	g.columns = make([][]string, len(g.queries))
	for qi, q := range g.queries {
		names := make([]string, len(q.Select))
		for i, sel := range q.Select {
			names[i] = sel.String()
		}
		g.columns[qi] = names
	}
	return nil
}

// collectResults assembles per-query results after the pipelines ran.
func (g *groupExec) collectResults(elapsed time.Duration) ([]*optimizer.Result, error) {
	per := elapsed / time.Duration(len(g.queries))
	out := make([]*optimizer.Result, len(g.queries))

	if g.spineOut != nil { // SPJ split path
		qidIdx := g.spineOut.Schema.IndexOf(exec.QidRef())
		if qidIdx < 0 {
			return nil, fmt.Errorf("shared: spine output lacks qid column")
		}
		for qi, q := range g.queries {
			var sel []int
			for _, ref := range q.Select {
				j := g.spineOut.Schema.IndexOf(storage.ColRef{Table: g.aliasOf(baseRefs(q, []storage.ColRef{ref})[0].Table), Column: ref.Column})
				if j < 0 {
					return nil, fmt.Errorf("shared: select column %v not in spine output", ref)
				}
				sel = append(sel, j)
			}
			res := &optimizer.Result{Columns: g.columns[qi], ExecTime: per}
			bit := uint64(1) << uint(qi)
			for _, row := range g.spineOut.Rows {
				if uint64(row[qidIdx].I)&bit == 0 {
					continue
				}
				outRow := make([]types.Value, len(sel))
				for i, j := range sel {
					outRow[i] = row[j]
				}
				res.Rows = append(res.Rows, outRow)
			}
			out[qi] = res
		}
		return out, nil
	}

	for qi := range g.queries {
		out[qi] = &optimizer.Result{
			Columns:  g.columns[qi],
			Rows:     g.collects[qi].Rows,
			ExecTime: per,
		}
	}
	return out, nil
}

// baseQualifyExprShared rewrites an expression's column refs to base
// qualification using the owning query's alias map.
func baseQualifyExprShared(q *plan.Query, e expr.Expr) expr.Expr {
	switch x := e.(type) {
	case *expr.Col:
		ref := x.Ref
		if rel := q.RelByAlias(ref.Table); rel != nil {
			ref.Table = rel.Table
		}
		return &expr.Col{Ref: ref}
	case *expr.Const:
		return x
	case *expr.Bin:
		return &expr.Bin{Op: x.Op, L: baseQualifyExprShared(q, x.L), R: baseQualifyExprShared(q, x.R)}
	}
	return e
}

func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
