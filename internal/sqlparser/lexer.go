// Package sqlparser parses the SPJA SQL subset that HashStash executes:
//
//	SELECT item [, item]...
//	FROM table [alias] [, table [alias]]...
//	[WHERE conjunct [AND conjunct]...]
//	[GROUP BY col [, col]...]
//
// with items being column references, aggregates (SUM, COUNT, AVG, MIN,
// MAX) over arithmetic expressions, conjuncts being equi-joins
// (a.x = b.y), comparisons against literals (=, <>, <, <=, >, >=),
// BETWEEN ... AND ..., and IN ('v', ...). Date literals are written
// DATE 'yyyy-mm-dd' or plain 'yyyy-mm-dd' against date columns.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"

	"hashstash/hashstasherr"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input; SQL keywords are ordinary identifiers here
// (the parser matches them case-insensitively).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return l.errAt(start, fmt.Sprintf("malformed number %q", text))
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return l.errAt(start, "unterminated string")
}

// errAt builds a structured ParseError at a byte offset of the source.
func (l *lexer) errAt(pos int, msg string) error {
	end := pos + 20
	if end > len(l.src) {
		end = len(l.src)
	}
	return &hashstasherr.ParseError{Pos: pos, Msg: msg, Context: l.src[pos:end]}
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	if l.pos+1 < len(l.src) && twoCharSymbols[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], pos: l.pos})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case ',', '(', ')', '.', '*', '+', '-', '/', '=', '<', '>':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	default:
		return l.errAt(l.pos, fmt.Sprintf("unexpected character %q", c))
	}
}
