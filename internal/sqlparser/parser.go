package sqlparser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hashstash/hashstasherr"
	"hashstash/internal/catalog"
	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Parse compiles a SQL text into a logical query, resolving and
// validating every reference against the catalog.
func Parse(sql string, cat *catalog.Catalog) (*plan.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat, src: sql}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	cat  *catalog.Catalog
	src  string

	q *plan.Query
	// selectItems defers projection/aggregate resolution until aliases
	// are known (FROM is parsed after SELECT).
	selectItems []rawItem
}

type rawItem struct {
	agg   string // "" for plain columns
	star  bool   // COUNT(*)
	exprT exprTree
	alias string
}

// exprTree is the unresolved arithmetic expression form.
type exprTree struct {
	kind  byte // 'c' column, 'n' number, 'b' binop
	table string
	col   string
	num   float64
	op    byte
	l, r  *exprTree
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return p.errWrap(nil, format, args...)
}

// errWrap builds a structured ParseError at the current token,
// optionally tagged with a sentinel from hashstasherr (an unresolvable
// column reference also satisfies errors.Is(err, ErrUnknownColumn)).
func (p *parser) errWrap(sentinel error, format string, args ...interface{}) error {
	return &hashstasherr.ParseError{
		Pos:     p.cur().pos,
		Msg:     fmt.Sprintf(format, args...),
		Context: p.context(),
		Err:     sentinel,
	}
}

func (p *parser) context() string {
	t := p.cur()
	start := t.pos
	end := start + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[start:end]
}

// keyword matches a case-insensitive identifier keyword.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.cur()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return nil
	}
	return p.errf("expected %q", sym)
}

var aggNames = map[string]expr.AggFunc{
	"SUM": expr.AggSum, "COUNT": expr.AggCount, "AVG": expr.AggAvg,
	"MIN": expr.AggMin, "MAX": expr.AggMax,
}

func (p *parser) parseQuery() (*plan.Query, error) {
	p.q = &plan.Query{}
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	if err := p.parseSelectList(); err != nil {
		return nil, err
	}
	if !p.keyword("FROM") {
		return nil, p.errf("expected FROM")
	}
	if err := p.parseFrom(); err != nil {
		return nil, err
	}
	if p.keyword("WHERE") {
		if err := p.parseWhere(); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		if err := p.parseGroupBy(); err != nil {
			return nil, err
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		if err := p.parseOrderBy(); err != nil {
			return nil, err
		}
	}
	if p.keyword("LIMIT") {
		if err := p.parseLimit(); err != nil {
			return nil, err
		}
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}
	return p.q, p.resolveSelect()
}

func (p *parser) parseOrderBy() error {
	alias, col, err := p.parseColRef()
	if err != nil {
		return err
	}
	spec := &plan.OrderSpec{Col: storage.ColRef{Table: alias, Column: col}}
	if p.keyword("DESC") {
		spec.Desc = true
	} else {
		p.keyword("ASC")
	}
	p.q.OrderBy = spec
	return nil
}

func (p *parser) parseLimit() error {
	t := p.cur()
	if t.kind != tokNumber {
		return p.errf("expected row count after LIMIT")
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return p.errf("bad LIMIT %q", t.text)
	}
	p.q.Limit = n
	return nil
}

func (p *parser) parseSelectList() error {
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		p.selectItems = append(p.selectItems, item)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	return nil
}

func (p *parser) parseSelectItem() (rawItem, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if _, isAgg := aggNames[strings.ToUpper(t.text)]; isAgg {
			name := strings.ToUpper(t.text)
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return rawItem{}, err
			}
			item := rawItem{agg: name}
			if p.cur().kind == tokSymbol && p.cur().text == "*" {
				p.pos++
				item.star = true
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return rawItem{}, err
				}
				item.exprT = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return rawItem{}, err
			}
			item.alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return rawItem{}, err
	}
	return rawItem{exprT: e, alias: p.parseOptionalAlias()}, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.keyword("AS") {
		if t := p.cur(); t.kind == tokIdent {
			p.pos++
			return t.text
		}
		return ""
	}
	return ""
}

// parseExpr handles + - over * / over primaries.
func (p *parser) parseExpr() (exprTree, error) {
	left, err := p.parseTerm()
	if err != nil {
		return exprTree{}, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return exprTree{}, err
			}
			l, r := left, right
			left = exprTree{kind: 'b', op: t.text[0], l: &l, r: &r}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm() (exprTree, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return exprTree{}, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			right, err := p.parsePrimary()
			if err != nil {
				return exprTree{}, err
			}
			l, r := left, right
			left = exprTree{kind: 'b', op: t.text[0], l: &l, r: &r}
			continue
		}
		return left, nil
	}
}

func (p *parser) parsePrimary() (exprTree, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return exprTree{}, err
		}
		return e, p.expectSymbol(")")
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return exprTree{}, p.errf("bad number %q", t.text)
		}
		return exprTree{kind: 'n', num: v}, nil
	case t.kind == tokIdent:
		p.pos++
		if p.cur().kind == tokSymbol && p.cur().text == "." {
			p.pos++
			col := p.cur()
			if col.kind != tokIdent {
				return exprTree{}, p.errf("expected column after %q.", t.text)
			}
			p.pos++
			return exprTree{kind: 'c', table: t.text, col: col.text}, nil
		}
		return exprTree{kind: 'c', col: t.text}, nil
	}
	return exprTree{}, p.errf("expected expression")
}

func (p *parser) parseFrom() error {
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return p.errf("expected table name")
		}
		p.pos++
		rel := plan.Rel{Table: strings.ToLower(t.text), Alias: strings.ToLower(t.text)}
		if a := p.cur(); a.kind == tokIdent && !isKeyword(a.text) {
			p.pos++
			rel.Alias = strings.ToLower(a.text)
		}
		p.q.Relations = append(p.q.Relations, rel)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "AS": true, "BETWEEN": true, "IN": true, "DATE": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// parseWhere parses AND-separated conjuncts.
func (p *parser) parseWhere() error {
	for {
		if err := p.parseConjunct(); err != nil {
			return err
		}
		if p.keyword("AND") {
			continue
		}
		return nil
	}
}

func (p *parser) parseConjunct() error {
	lt, lcol, err := p.parseColRef()
	if err != nil {
		return err
	}
	ref := storage.ColRef{Table: lt, Column: lcol}
	kind, err := p.resolveKind(ref)
	if err != nil {
		return err
	}

	t := p.cur()
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		p.pos++
		lo, err := p.parseLiteral(kind)
		if err != nil {
			return err
		}
		if !p.keyword("AND") {
			return p.errf("expected AND in BETWEEN")
		}
		hi, err := p.parseLiteral(kind)
		if err != nil {
			return err
		}
		p.addPred(ref, expr.IntervalConstraint(kind, expr.Interval{
			HasLo: true, Lo: lo, LoIncl: true,
			HasHi: true, Hi: hi, HiIncl: true,
		}))
		return nil

	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		var vals []string
		for {
			v, err := p.parseLiteral(types.String)
			if err != nil {
				return err
			}
			vals = append(vals, v.S)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		if kind != types.String {
			return p.errf("IN requires a string column")
		}
		p.addPred(ref, expr.SetConstraint(vals...))
		return nil

	case t.kind == tokSymbol:
		op := t.text
		p.pos++
		// Join predicate: rhs is another column reference.
		if p.cur().kind == tokIdent && !isLiteralStart(p.toks[p.pos]) {
			save := p.pos
			if rt, rcol, err := p.parseColRef(); err == nil {
				if op != "=" {
					return p.errf("join predicates must use =")
				}
				p.q.Joins = append(p.q.Joins, plan.JoinPred{
					Left:  ref,
					Right: storage.ColRef{Table: rt, Column: rcol},
				})
				return nil
			}
			p.pos = save
		}
		v, err := p.parseLiteral(kind)
		if err != nil {
			return err
		}
		con, err := comparisonConstraint(kind, op, v)
		if err != nil {
			return p.errf("%v", err)
		}
		p.addPred(ref, con)
		return nil
	}
	return p.errf("expected comparison")
}

// isLiteralStart distinguishes DATE 'lit' from column references.
func isLiteralStart(t token) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, "DATE")
}

func comparisonConstraint(kind types.Kind, op string, v types.Value) (expr.Constraint, error) {
	if kind == types.String {
		switch op {
		case "=":
			return expr.SetConstraint(v.S), nil
		default:
			return expr.Constraint{}, fmt.Errorf("operator %q unsupported on strings", op)
		}
	}
	switch op {
	case "=":
		return expr.IntervalConstraint(kind, expr.PointInterval(v)), nil
	case "<":
		return expr.IntervalConstraint(kind, expr.Interval{HasHi: true, Hi: v}), nil
	case "<=":
		return expr.IntervalConstraint(kind, expr.Interval{HasHi: true, Hi: v, HiIncl: true}), nil
	case ">":
		return expr.IntervalConstraint(kind, expr.Interval{HasLo: true, Lo: v}), nil
	case ">=":
		return expr.IntervalConstraint(kind, expr.Interval{HasLo: true, Lo: v, LoIncl: true}), nil
	}
	return expr.Constraint{}, fmt.Errorf("unsupported operator %q", op)
}

func (p *parser) addPred(ref storage.ColRef, con expr.Constraint) {
	p.q.Filter = expr.NewBox(append(p.q.Filter, expr.Pred{Col: ref, Con: con})...)
}

// parseColRef reads alias.column or a bare column (resolved to the
// unique relation owning it).
func (p *parser) parseColRef() (string, string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", "", p.errf("expected column reference")
	}
	p.pos++
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.pos++
		col := p.cur()
		if col.kind != tokIdent {
			return "", "", p.errf("expected column after alias")
		}
		p.pos++
		return strings.ToLower(t.text), strings.ToLower(col.text), nil
	}
	alias, err := p.ownerOf(strings.ToLower(t.text))
	if err != nil {
		return "", "", err
	}
	return alias, strings.ToLower(t.text), nil
}

// ownerOf finds the unique relation containing a bare column name.
func (p *parser) ownerOf(col string) (string, error) {
	owner := ""
	for _, rel := range p.q.Relations {
		tbl := p.cat.Table(rel.Table)
		if tbl != nil && tbl.Column(col) != nil {
			if owner != "" {
				return "", p.errf("ambiguous column %q", col)
			}
			owner = rel.Alias
		}
	}
	if owner == "" {
		return "", p.errWrap(hashstasherr.ErrUnknownColumn, "unknown column %q", col)
	}
	return owner, nil
}

func (p *parser) resolveKind(ref storage.ColRef) (types.Kind, error) {
	rel := p.q.RelByAlias(ref.Table)
	if rel == nil {
		return 0, p.errWrap(hashstasherr.ErrUnknownColumn, "unknown alias %q", ref.Table)
	}
	kind, err := p.cat.Resolve(rel.Table, ref.Column)
	if err != nil {
		// Keep the catalog's sentinel (unknown column/table) visible
		// through the parse-position wrapper.
		var sentinel error
		if errors.Is(err, hashstasherr.ErrUnknownColumn) {
			sentinel = hashstasherr.ErrUnknownColumn
		} else if errors.Is(err, hashstasherr.ErrUnknownTable) {
			sentinel = hashstasherr.ErrUnknownTable
		}
		return 0, p.errWrap(sentinel, "%v", err)
	}
	return kind, nil
}

// parseLiteral reads a literal of the expected kind; DATE 'x' and plain
// 'yyyy-mm-dd' strings coerce to dates for date columns.
func (p *parser) parseLiteral(kind types.Kind) (types.Value, error) {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, "DATE") {
		p.pos++
		t = p.cur()
		if t.kind != tokString {
			return types.Value{}, p.errf("expected date string after DATE")
		}
		p.pos++
		d, err := types.ParseDate(t.text)
		if err != nil {
			return types.Value{}, p.errf("%v", err)
		}
		return types.NewDate(d), nil
	}
	switch t.kind {
	case tokNumber:
		p.pos++
		switch kind {
		case types.Float64:
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Value{}, p.errf("bad number")
			}
			return types.NewFloat(f), nil
		default:
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(t.text, 64)
				if ferr != nil {
					return types.Value{}, p.errf("bad number")
				}
				return types.NewFloat(f), nil
			}
			if kind == types.Date {
				return types.NewDate(i), nil
			}
			return types.NewInt(i), nil
		}
	case tokString:
		p.pos++
		if kind == types.Date {
			d, err := types.ParseDate(t.text)
			if err != nil {
				return types.Value{}, p.errf("%v", err)
			}
			return types.NewDate(d), nil
		}
		if kind != types.String {
			return types.Value{}, p.errf("string literal compared against %v column", kind)
		}
		return types.NewString(t.text), nil
	}
	return types.Value{}, p.errf("expected literal")
}

func (p *parser) parseGroupBy() error {
	for {
		alias, col, err := p.parseColRef()
		if err != nil {
			return err
		}
		p.q.GroupBy = append(p.q.GroupBy, storage.ColRef{Table: alias, Column: col})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

// resolveSelect turns raw select items into projections and aggregates
// now that aliases are known.
func (p *parser) resolveSelect() error {
	for _, item := range p.selectItems {
		if item.agg != "" {
			spec := expr.AggSpec{Func: aggNames[item.agg], Alias: item.alias}
			if !item.star {
				e, err := p.resolveExpr(item.exprT)
				if err != nil {
					return err
				}
				spec.Arg = e
			} else if spec.Func != expr.AggCount {
				return p.errf("%s(*) is not supported", item.agg)
			}
			p.q.Aggs = append(p.q.Aggs, spec)
			continue
		}
		if item.exprT.kind != 'c' {
			return p.errf("non-aggregate select items must be columns")
		}
		ref, err := p.resolveColTree(item.exprT)
		if err != nil {
			return err
		}
		p.q.Select = append(p.q.Select, ref)
	}
	return nil
}

func (p *parser) resolveColTree(t exprTree) (storage.ColRef, error) {
	table := strings.ToLower(t.table)
	col := strings.ToLower(t.col)
	if table == "" {
		alias, err := p.ownerOf(col)
		if err != nil {
			return storage.ColRef{}, err
		}
		table = alias
	}
	return storage.ColRef{Table: table, Column: col}, nil
}

func (p *parser) resolveExpr(t exprTree) (expr.Expr, error) {
	switch t.kind {
	case 'c':
		ref, err := p.resolveColTree(t)
		if err != nil {
			return nil, err
		}
		return &expr.Col{Ref: ref}, nil
	case 'n':
		return &expr.Const{V: types.NewFloat(t.num)}, nil
	case 'b':
		l, err := p.resolveExpr(*t.l)
		if err != nil {
			return nil, err
		}
		r, err := p.resolveExpr(*t.r)
		if err != nil {
			return nil, err
		}
		return &expr.Bin{Op: expr.BinOp(t.op), L: l, R: r}, nil
	}
	return nil, p.errf("bad expression")
}
