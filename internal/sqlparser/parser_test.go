package sqlparser

import (
	"strings"
	"testing"

	"hashstash/internal/catalog"
	"hashstash/internal/expr"
	"hashstash/internal/storage"
	"hashstash/internal/tpch"
	"hashstash/internal/types"
)

func testCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	db, err := tpch.Generate(tpch.Config{SF: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	for _, tbl := range db.Tables() {
		cat.Register(tbl)
	}
	return cat
}

func TestParseQ3Shape(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`
		SELECT c.c_age, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
		FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey
		  AND o.o_orderkey = l.l_orderkey
		  AND l.l_shipdate >= DATE '1995-03-15'
		GROUP BY c.c_age`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 || q.Relations[1].Alias != "o" || q.Relations[1].Table != "orders" {
		t.Errorf("relations = %v", q.Relations)
	}
	if len(q.Joins) != 2 {
		t.Errorf("joins = %v", q.Joins)
	}
	if len(q.Filter) != 1 {
		t.Fatalf("filter = %v", q.Filter)
	}
	con, ok := q.Filter.Constraint(storage.ColRef{Table: "l", Column: "l_shipdate"})
	if !ok || !con.Iv.HasLo || con.Iv.Lo.I != types.MustParseDate("1995-03-15") || !con.Iv.LoIncl {
		t.Errorf("shipdate constraint = %v", con)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (storage.ColRef{Table: "c", Column: "c_age"}) {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Func != expr.AggSum || q.Aggs[0].Alias != "revenue" {
		t.Errorf("aggs = %v", q.Aggs)
	}
	if got := q.Aggs[0].Arg.String(); got != "(l.l_extendedprice * (1 - l.l_discount))" {
		t.Errorf("agg arg = %s", got)
	}
}

func TestParseBareColumnsAndDefaults(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`SELECT c_name FROM customer WHERE c_age >= 30 AND c_mktsegment = 'BUILDING'`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Relations[0].Alias != "customer" {
		t.Errorf("default alias = %q", q.Relations[0].Alias)
	}
	if len(q.Select) != 1 || q.Select[0].Column != "c_name" {
		t.Errorf("select = %v", q.Select)
	}
	seg, ok := q.Filter.Constraint(storage.ColRef{Table: "customer", Column: "c_mktsegment"})
	if !ok || len(seg.Set) != 1 || seg.Set[0] != "BUILDING" {
		t.Errorf("segment constraint = %v", seg)
	}
}

func TestParseOperatorsAndBetween(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`SELECT o_orderkey FROM orders
		WHERE o_totalprice > 1000 AND o_totalprice <= 5000
		  AND o_orderdate BETWEEN '1995-01-01' AND '1995-12-31'`, cat)
	if err != nil {
		t.Fatal(err)
	}
	price, ok := q.Filter.Constraint(storage.ColRef{Table: "orders", Column: "o_totalprice"})
	if !ok {
		t.Fatal("price constraint missing")
	}
	if !price.Iv.HasLo || price.Iv.LoIncl || price.Iv.Lo.F != 1000 {
		t.Errorf("price lo = %v", price.Iv)
	}
	if !price.Iv.HasHi || !price.Iv.HiIncl || price.Iv.Hi.F != 5000 {
		t.Errorf("price hi = %v", price.Iv)
	}
	date, ok := q.Filter.Constraint(storage.ColRef{Table: "orders", Column: "o_orderdate"})
	if !ok || !date.Iv.HasLo || !date.Iv.HasHi || !date.Iv.LoIncl || !date.Iv.HiIncl {
		t.Errorf("date constraint = %v", date)
	}
}

func TestParseInList(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`SELECT p_partkey FROM part WHERE p_brand IN ('Brand#11', 'Brand#22')`, cat)
	if err != nil {
		t.Fatal(err)
	}
	con, ok := q.Filter.Constraint(storage.ColRef{Table: "part", Column: "p_brand"})
	if !ok || len(con.Set) != 2 {
		t.Errorf("IN constraint = %v", con)
	}
}

func TestParseCountStarAndAvg(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`SELECT c_age, COUNT(*), AVG(c_acctbal) FROM customer GROUP BY c_age`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 2 || q.Aggs[0].Func != expr.AggCount || q.Aggs[0].Arg != nil {
		t.Errorf("aggs = %v", q.Aggs)
	}
	if q.Aggs[1].Func != expr.AggAvg || q.Aggs[1].Arg == nil {
		t.Errorf("avg = %v", q.Aggs[1])
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCat(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM customer",
		"FROM customer",
		"SELECT c_name customer",            // missing FROM
		"SELECT zzz FROM customer",          // unknown column
		"SELECT c_name FROM nosuch",         // unknown table
		"SELECT c_name FROM customer WHERE", // dangling where
		"SELECT c_name FROM customer WHERE c_age",                    // no comparison
		"SELECT c_name FROM customer WHERE c_age !! 3",               // bad symbol
		"SELECT c_name FROM customer WHERE c_age >= 'x'",             // ... parses as string? kind=int -> bad number? actually string literal on int column
		"SELECT c_name FROM customer WHERE c_name > 'a'",             // range on string
		"SELECT c_name FROM customer WHERE c_age IN (1, 2)",          // IN on int
		"SELECT SUM(*) FROM customer",                                // SUM(*)
		"SELECT c_name FROM customer GROUP BY",                       // dangling group by
		"SELECT c_name FROM customer WHERE c_age BETWEEN 1 OR 2",     // bad between
		"SELECT c_name, c_age FROM customer GROUP BY c_age",          // select not grouped
		"SELECT c_name FROM customer extra trailing",                 // trailing
		"SELECT c_name FROM customer WHERE c_age = 3 AND",            // dangling and
		"SELECT c_custkey FROM customer, orders WHERE c_age > 1",     // disconnected join graph
		"SELECT o_orderkey FROM orders WHERE o_orderdate >= 'xx-yy'", // bad date
		"SELECT c_name FROM customer WHERE c_custkey <> c_nationkey", // non-equi join
	}
	for _, sql := range bad {
		if _, err := Parse(sql, cat); err == nil {
			t.Errorf("accepted: %s", sql)
		}
	}
}

func TestParseJoinBothQualifications(t *testing.T) {
	cat := testCat(t)
	q, err := Parse(`SELECT o.o_orderkey FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND l_quantity >= 25`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %v", q.Joins)
	}
	qty, ok := q.Filter.Constraint(storage.ColRef{Table: "l", Column: "l_quantity"})
	if !ok || qty.Iv.Lo.I != 25 {
		t.Errorf("quantity = %v", qty)
	}
}

func TestParseAmbiguousBareColumn(t *testing.T) {
	cat := testCat(t)
	// c_nationkey exists in customer; s_nationkey in supplier — but a
	// truly ambiguous name needs two tables sharing a column name.
	// nationkey columns are prefixed, so craft ambiguity via two aliases
	// of the same table... the parser rejects duplicate aliases, so use
	// the one genuinely shared name scenario: none exists in TPC-H.
	// Instead assert that qualified references disambiguate fine.
	q, err := Parse(`SELECT c.c_nationkey FROM customer c, supplier s WHERE c.c_nationkey = s.s_nationkey`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Errorf("joins = %v", q.Joins)
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := lex("a<=b >= 'it''s' 1.5")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "<=") || !strings.Contains(joined, ">=") {
		t.Errorf("two-char symbols: %v", texts)
	}
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped quote: %v", texts)
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("1. "); err == nil {
		t.Error("malformed number accepted")
	}
	if _, err := lex("a ? b"); err == nil {
		t.Error("bad character accepted")
	}
}
