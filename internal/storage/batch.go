package storage

import (
	"fmt"

	"hashstash/internal/types"
)

// BatchSize is the number of rows processed per pipeline step. 1024 rows
// keeps per-batch column vectors inside the L1/L2 caches for typical
// widths, mirroring vectorized engines.
const BatchSize = 1024

// Vec is a column vector of intermediate results. Unlike Column it is a
// transient, reusable buffer.
type Vec struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewVec returns an empty vector of the given kind with capacity for one
// batch.
func NewVec(kind types.Kind) *Vec {
	v := &Vec{Kind: kind}
	switch kind {
	case types.Int64, types.Date:
		v.Ints = make([]int64, 0, BatchSize)
	case types.Float64:
		v.Floats = make([]float64, 0, BatchSize)
	case types.String:
		v.Strs = make([]string, 0, BatchSize)
	}
	return v
}

// Reset truncates the vector to zero length, keeping capacity.
func (v *Vec) Reset() {
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
}

// Len reports the vector length.
func (v *Vec) Len() int {
	switch v.Kind {
	case types.Int64, types.Date:
		return len(v.Ints)
	case types.Float64:
		return len(v.Floats)
	case types.String:
		return len(v.Strs)
	}
	return 0
}

// Append adds one value of the vector's kind.
func (v *Vec) Append(val types.Value) {
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, val.I)
	case types.Float64:
		v.Floats = append(v.Floats, val.F)
	case types.String:
		v.Strs = append(v.Strs, val.S)
	}
}

// AppendFrom copies row i of the source column into the vector.
func (v *Vec) AppendFrom(c *Column, i int32) {
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, c.Ints[i])
	case types.Float64:
		v.Floats = append(v.Floats, c.Floats[i])
	case types.String:
		v.Strs = append(v.Strs, c.Strs[i])
	}
}

// Value returns the value at row i.
func (v *Vec) Value(i int) types.Value {
	switch v.Kind {
	case types.Int64:
		return types.NewInt(v.Ints[i])
	case types.Date:
		return types.NewDate(v.Ints[i])
	case types.Float64:
		return types.NewFloat(v.Floats[i])
	case types.String:
		return types.NewString(v.Strs[i])
	}
	panic("storage: bad vec kind")
}

// ColRef names a column flowing through a pipeline: the originating table
// alias plus the column name. Computed columns use an empty Table and a
// synthetic name.
type ColRef struct {
	Table  string
	Column string
}

// String renders the reference as table.column.
func (r ColRef) String() string {
	if r.Table == "" {
		return r.Column
	}
	return r.Table + "." + r.Column
}

// ColMeta couples a column reference with its kind.
type ColMeta struct {
	Ref  ColRef
	Kind types.Kind
}

// Schema describes the columns of a Batch, in order.
type Schema []ColMeta

// IndexOf returns the position of ref in the schema, or -1.
func (s Schema) IndexOf(ref ColRef) int {
	for i, m := range s {
		if m.Ref == ref {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf but panics when the reference is absent; plan
// compilation uses it for references that were validated earlier.
func (s Schema) MustIndexOf(ref ColRef) int {
	i := s.IndexOf(ref)
	if i < 0 {
		panic(fmt.Sprintf("storage: schema has no column %v (schema %v)", ref, s))
	}
	return i
}

// Batch is a set of equal-length column vectors described by a Schema.
type Batch struct {
	Schema Schema
	Cols   []*Vec
}

// NewBatch allocates a batch matching the schema.
func NewBatch(schema Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Vec, len(schema))}
	for i, m := range schema {
		b.Cols[i] = NewVec(m.Kind)
	}
	return b
}

// Len reports the row count of the batch.
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Reset truncates all vectors.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
}
