package storage

import (
	"fmt"

	"hashstash/internal/types"
)

// BatchSize is the number of rows processed per pipeline step. 1024 rows
// keeps per-batch column vectors inside the L1/L2 caches for typical
// widths, mirroring vectorized engines.
const BatchSize = 1024

// Vec is a column vector of intermediate results. Unlike Column it is a
// transient, reusable buffer.
type Vec struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewVec returns an empty vector of the given kind with capacity for one
// batch.
func NewVec(kind types.Kind) *Vec {
	v := &Vec{Kind: kind}
	switch kind {
	case types.Int64, types.Date:
		v.Ints = make([]int64, 0, BatchSize)
	case types.Float64:
		v.Floats = make([]float64, 0, BatchSize)
	case types.String:
		v.Strs = make([]string, 0, BatchSize)
	}
	return v
}

// Reset truncates the vector to zero length, keeping capacity.
func (v *Vec) Reset() {
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
}

// Len reports the vector length.
func (v *Vec) Len() int {
	switch v.Kind {
	case types.Int64, types.Date:
		return len(v.Ints)
	case types.Float64:
		return len(v.Floats)
	case types.String:
		return len(v.Strs)
	}
	return 0
}

// Append adds one value of the vector's kind.
func (v *Vec) Append(val types.Value) {
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, val.I)
	case types.Float64:
		v.Floats = append(v.Floats, val.F)
	case types.String:
		v.Strs = append(v.Strs, val.S)
	}
}

// AppendFrom copies row i of the source column into the vector.
func (v *Vec) AppendFrom(c *Column, i int32) {
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, c.Ints[i])
	case types.Float64:
		v.Floats = append(v.Floats, c.Floats[i])
	case types.String:
		v.Strs = append(v.Strs, c.Strs[i])
	}
}

// AppendRange bulk-appends rows [start, end) of a source vector of the
// same kind. The kind dispatch happens once; the copy is one contiguous
// memmove per data slice.
func (v *Vec) AppendRange(src *Vec, start, end int) {
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, src.Ints[start:end]...)
	case types.Float64:
		v.Floats = append(v.Floats, src.Floats[start:end]...)
	case types.String:
		v.Strs = append(v.Strs, src.Strs[start:end]...)
	}
}

// AppendGather appends the selected rows of a source vector of the same
// kind, in selection order. This is the single materialization point of
// a selection vector: operators mark surviving rows and gather once,
// instead of copying every column row by row.
func (v *Vec) AppendGather(src *Vec, sel []int32) {
	switch v.Kind {
	case types.Int64, types.Date:
		data := src.Ints
		for _, i := range sel {
			v.Ints = append(v.Ints, data[i])
		}
	case types.Float64:
		data := src.Floats
		for _, i := range sel {
			v.Floats = append(v.Floats, data[i])
		}
	case types.String:
		data := src.Strs
		for _, i := range sel {
			v.Strs = append(v.Strs, data[i])
		}
	}
}

// AppendColumnRange bulk-appends rows [start, end) of a base-table
// column of the same kind.
func (v *Vec) AppendColumnRange(c *Column, start, end int32) {
	src := c.view()
	v.AppendRange(&src, int(start), int(end))
}

// AppendColumnGather appends the selected rows of a base-table column of
// the same kind, in selection order.
func (v *Vec) AppendColumnGather(c *Column, sel []int32) {
	src := c.view()
	v.AppendGather(&src, sel)
}

// AppendRepeat appends n copies of a value of the vector's kind.
func (v *Vec) AppendRepeat(val types.Value, n int) {
	switch v.Kind {
	case types.Int64, types.Date:
		for i := 0; i < n; i++ {
			v.Ints = append(v.Ints, val.I)
		}
	case types.Float64:
		for i := 0; i < n; i++ {
			v.Floats = append(v.Floats, val.F)
		}
	case types.String:
		for i := 0; i < n; i++ {
			v.Strs = append(v.Strs, val.S)
		}
	}
}

// Value returns the value at row i.
func (v *Vec) Value(i int) types.Value {
	switch v.Kind {
	case types.Int64:
		return types.NewInt(v.Ints[i])
	case types.Date:
		return types.NewDate(v.Ints[i])
	case types.Float64:
		return types.NewFloat(v.Floats[i])
	case types.String:
		return types.NewString(v.Strs[i])
	}
	panic("storage: bad vec kind")
}

// ColRef names a column flowing through a pipeline: the originating table
// alias plus the column name. Computed columns use an empty Table and a
// synthetic name.
type ColRef struct {
	Table  string
	Column string
}

// String renders the reference as table.column.
func (r ColRef) String() string {
	if r.Table == "" {
		return r.Column
	}
	return r.Table + "." + r.Column
}

// ColMeta couples a column reference with its kind.
type ColMeta struct {
	Ref  ColRef
	Kind types.Kind
}

// Schema describes the columns of a Batch, in order.
type Schema []ColMeta

// IndexOf returns the position of ref in the schema, or -1.
func (s Schema) IndexOf(ref ColRef) int {
	for i, m := range s {
		if m.Ref == ref {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf but panics when the reference is absent; plan
// compilation uses it for references that were validated earlier.
func (s Schema) MustIndexOf(ref ColRef) int {
	i := s.IndexOf(ref)
	if i < 0 {
		panic(fmt.Sprintf("storage: schema has no column %v (schema %v)", ref, s))
	}
	return i
}

// Scratch holds the reusable working buffers of vectorized operators:
// selection vectors, hash vectors, encoded key columns and expression
// intermediates. Each buffer is valid only for the duration of one
// operator call — the next operator touching the batch may reuse it.
// Scratch is owned by its batch, and batches are owned by one worker at
// a time, so none of this synchronizes.
type Scratch struct {
	sel   []int32
	ents  []int32
	cur   []int32
	hash  []uint64
	masks []int64
	miss  []bool
	enc   [][]uint64
	f64   [][]float64
}

// Sel returns the selection-vector buffer with length n (contents
// unspecified).
func (s *Scratch) Sel(n int) []int32 {
	if cap(s.sel) < n {
		s.sel = make([]int32, n, grow(n))
	}
	s.sel = s.sel[:n]
	return s.sel
}

// SeqSel returns the selection vector [0, 1, ..., n-1] — the identity
// selection that constraint kernels refine in place.
func (s *Scratch) SeqSel(n int) []int32 {
	sel := s.Sel(n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// Ents returns a second int32 buffer (entry indices of probe matches),
// independent of Sel, with length 0 and capacity ≥ n.
func (s *Scratch) Ents(n int) []int32 {
	if cap(s.ents) < n {
		s.ents = make([]int32, 0, grow(n))
	}
	return s.ents[:0]
}

// Cur returns a third int32 buffer (per-row chain cursors of batched
// hash-table probes), independent of Sel and Ents, with length n
// (contents unspecified).
func (s *Scratch) Cur(n int) []int32 {
	if cap(s.cur) < n {
		s.cur = make([]int32, n, grow(n))
	}
	s.cur = s.cur[:n]
	return s.cur
}

// Hash returns the per-row hash buffer with length n.
func (s *Scratch) Hash(n int) []uint64 {
	if cap(s.hash) < n {
		s.hash = make([]uint64, n, grow(n))
	}
	s.hash = s.hash[:n]
	return s.hash
}

// Masks returns an int64 buffer (qid bitmasks) with length 0 and
// capacity ≥ n.
func (s *Scratch) Masks(n int) []int64 {
	if cap(s.masks) < n {
		s.masks = make([]int64, 0, grow(n))
	}
	return s.masks[:0]
}

// MasksN returns the qid bitmask buffer with length n, zeroed.
func (s *Scratch) MasksN(n int) []int64 {
	if cap(s.masks) < n {
		s.masks = make([]int64, n, grow(n))
	}
	s.masks = s.masks[:n]
	for i := range s.masks {
		s.masks[i] = 0
	}
	return s.masks
}

// Miss returns the string-key miss buffer with length n, cleared to
// false.
func (s *Scratch) Miss(n int) []bool {
	if cap(s.miss) < n {
		s.miss = make([]bool, n, grow(n))
	}
	s.miss = s.miss[:n]
	for i := range s.miss {
		s.miss[i] = false
	}
	return s.miss
}

// Enc returns k encoded-cell columns of length n each (contents
// unspecified). The k columns are stable across calls with the same or
// smaller k.
func (s *Scratch) Enc(k, n int) [][]uint64 {
	for len(s.enc) < k {
		s.enc = append(s.enc, nil)
	}
	for i := 0; i < k; i++ {
		if cap(s.enc[i]) < n {
			s.enc[i] = make([]uint64, n, grow(n))
		}
		s.enc[i] = s.enc[i][:n]
	}
	return s.enc[:k]
}

// Floats returns the float64 scratch at the given expression-tree depth
// with length n — the intermediate buffers of vectorized expression
// evaluation. Buffers at distinct depths never alias.
func (s *Scratch) Floats(depth, n int) []float64 {
	for len(s.f64) <= depth {
		s.f64 = append(s.f64, nil)
	}
	if cap(s.f64[depth]) < n {
		s.f64[depth] = make([]float64, n, grow(n))
	}
	s.f64[depth] = s.f64[depth][:n]
	return s.f64[depth]
}

// AdoptSel hands a grown selection buffer back to the scratch so its
// capacity is kept for subsequent batches (probes can emit more matches
// than input rows, growing the buffer past its initial capacity).
func (s *Scratch) AdoptSel(sel []int32) { s.sel = sel }

// AdoptEnts hands a grown entry buffer back to the scratch.
func (s *Scratch) AdoptEnts(ents []int32) { s.ents = ents }

// AdoptMasks hands a grown mask buffer back to the scratch.
func (s *Scratch) AdoptMasks(masks []int64) { s.masks = masks }

// grow rounds scratch capacities up to at least one batch so steady-state
// pipelines never reallocate.
func grow(n int) int {
	if n < BatchSize {
		return BatchSize
	}
	return n
}

// Batch is a set of equal-length column vectors described by a Schema.
type Batch struct {
	Schema Schema
	Cols   []*Vec

	scratch Scratch
}

// NewBatch allocates a batch matching the schema.
func NewBatch(schema Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Vec, len(schema))}
	for i, m := range schema {
		b.Cols[i] = NewVec(m.Kind)
	}
	return b
}

// Scratch returns the batch's reusable working buffers. Operators that
// read the batch may use them for the duration of one call.
func (b *Batch) Scratch() *Scratch { return &b.scratch }

// Len reports the row count of the batch.
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Reset truncates all vectors.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
}
