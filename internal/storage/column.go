// Package storage implements the in-memory column store that HashStash
// executes over: typed columns, tables with sorted secondary indexes on
// selection attributes, the column-vector batches that flow through the
// push-based execution pipelines, and the morsels (row ranges) that
// partition a table into independent parallel scan units.
//
// None of these structures synchronize internally: tables and indexes
// are immutable while queries run, batches are owned by one worker at a
// time, and the execution layer coordinates everything else.
package storage

import (
	"fmt"
	"sort"

	"hashstash/internal/types"
)

// Column is a typed base-table column. Exactly one of the data slices is
// populated, selected by Kind (Ints also backs Date columns).
type Column struct {
	Name   string
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewColumn returns an empty column of the given kind.
func NewColumn(name string, kind types.Kind) *Column {
	return &Column{Name: name, Kind: kind}
}

// Len reports the number of rows in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case types.Int64, types.Date:
		return len(c.Ints)
	case types.Float64:
		return len(c.Floats)
	case types.String:
		return len(c.Strs)
	}
	return 0
}

// Append adds one value; its kind must match the column kind.
func (c *Column) Append(v types.Value) {
	if v.Kind != c.Kind && !(c.Kind == types.Date && v.Kind == types.Int64) {
		panic(fmt.Sprintf("storage: append %v value to %v column %q", v.Kind, c.Kind, c.Name))
	}
	switch c.Kind {
	case types.Int64, types.Date:
		c.Ints = append(c.Ints, v.I)
	case types.Float64:
		c.Floats = append(c.Floats, v.F)
	case types.String:
		c.Strs = append(c.Strs, v.S)
	}
}

// view returns a Vec aliasing the column's data slices; Column and Vec
// share the same layout, so the Vec bulk kernels serve both.
func (c *Column) view() Vec {
	return Vec{Kind: c.Kind, Ints: c.Ints, Floats: c.Floats, Strs: c.Strs}
}

// AppendVec bulk-appends every row of a batch vector of the same kind —
// the kind dispatch happens once per batch instead of once per row.
func (c *Column) AppendVec(v *Vec) {
	dst := c.view()
	dst.AppendRange(v, 0, v.Len())
	c.Ints, c.Floats, c.Strs = dst.Ints, dst.Floats, dst.Strs
}

// AppendColumn bulk-appends every row of another column of the same
// kind — the concatenation step when per-worker temp-table partials
// merge into one materialized table.
func (c *Column) AppendColumn(src *Column) {
	v := src.view()
	c.AppendVec(&v)
}

// Value returns the value at row i.
func (c *Column) Value(i int) types.Value {
	switch c.Kind {
	case types.Int64:
		return types.NewInt(c.Ints[i])
	case types.Date:
		return types.NewDate(c.Ints[i])
	case types.Float64:
		return types.NewFloat(c.Floats[i])
	case types.String:
		return types.NewString(c.Strs[i])
	}
	panic("storage: bad column kind")
}

// less orders two rows of the column; used by index construction.
func (c *Column) less(i, j int32) bool {
	switch c.Kind {
	case types.Int64, types.Date:
		return c.Ints[i] < c.Ints[j]
	case types.Float64:
		return c.Floats[i] < c.Floats[j]
	case types.String:
		return c.Strs[i] < c.Strs[j]
	}
	return false
}

// SortedPerm returns the row ids of the column ordered by value. The
// sort is stable, so rows with equal keys stay in row-id order — range
// lookups over the permutation return runs that scan the base table
// mostly forward.
func SortedPerm(col *Column) []int32 {
	perm := make([]int32, col.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return col.less(perm[a], perm[b]) })
	return perm
}

// Index is a sorted secondary index: Perm lists all row ids of the table
// ordered by the indexed column's value. Range lookups binary-search the
// permutation and return a contiguous run of row ids.
type Index struct {
	Col  *Column
	Perm []int32
}

// BuildIndex sorts the table's rows by the column value.
func BuildIndex(col *Column) *Index {
	return &Index{Col: col, Perm: SortedPerm(col)}
}

// Range returns the slice of the permutation whose column values v
// satisfy lo <= v <= hi under the given inclusivity flags. Unbounded ends
// are expressed by hasLo/hasHi=false. The returned slice aliases the
// index; callers must not modify it.
func (ix *Index) Range(lo, hi types.Value, hasLo, hasHi, loIncl, hiIncl bool) []int32 {
	n := len(ix.Perm)
	start := 0
	if hasLo {
		start = sort.Search(n, func(i int) bool {
			cmp := ix.Col.Value(int(ix.Perm[i])).Compare(lo)
			if loIncl {
				return cmp >= 0
			}
			return cmp > 0
		})
	}
	end := n
	if hasHi {
		end = sort.Search(n, func(i int) bool {
			cmp := ix.Col.Value(int(ix.Perm[i])).Compare(hi)
			if hiIncl {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	if start > end {
		return nil
	}
	return ix.Perm[start:end]
}
