package storage

// DefaultMorselRows is the default morsel granularity: the number of
// rows one scan unit covers in morsel-driven parallel execution. 64K
// rows keeps per-morsel scheduling overhead negligible while yielding
// enough independent units to saturate a worker pool on TPC-H-sized
// tables (morsel-driven parallelism after Leis et al.).
const DefaultMorselRows = 64 * 1024

// Morsel is a half-open row range [Start, End) of a table or of any
// other row-addressable container (index permutation slice, hash-table
// entry arena). Morsels partition a source into independent scan units
// that workers claim one at a time.
type Morsel struct {
	Start, End int32
}

// Len reports the number of rows the morsel covers.
func (m Morsel) Len() int { return int(m.End - m.Start) }

// MorselRange splits [0, n) into morsels of at most size rows. A
// non-positive size uses DefaultMorselRows; n <= 0 yields nil.
func MorselRange(n, size int) []Morsel {
	if size <= 0 {
		size = DefaultMorselRows
	}
	if n <= 0 {
		return nil
	}
	out := make([]Morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Morsel{Start: int32(lo), End: int32(hi)})
	}
	return out
}

// Morsels partitions the table's rows into scan morsels of at most size
// rows (DefaultMorselRows when size <= 0).
func (t *Table) Morsels(size int) []Morsel {
	return MorselRange(t.NumRows(), size)
}
