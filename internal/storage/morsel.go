package storage

// DefaultMorselRows is the default morsel granularity: the number of
// rows one scan unit covers in morsel-driven parallel execution. 64K
// rows keeps per-morsel scheduling overhead negligible while yielding
// enough independent units to saturate a worker pool on TPC-H-sized
// tables (morsel-driven parallelism after Leis et al.).
const DefaultMorselRows = 64 * 1024

// Morsel is a half-open row range [Start, End) of a table or of any
// other row-addressable container (index permutation slice, hash-table
// entry arena). Morsels partition a source into independent scan units
// that workers claim one at a time.
type Morsel struct {
	Start, End int32
}

// Len reports the number of rows the morsel covers.
func (m Morsel) Len() int { return int(m.End - m.Start) }

// MorselRange splits [0, n) into morsels of at most size rows. A
// non-positive size uses DefaultMorselRows; n <= 0 yields nil.
func MorselRange(n, size int) []Morsel {
	if size <= 0 {
		size = DefaultMorselRows
	}
	if n <= 0 {
		return nil
	}
	out := make([]Morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Morsel{Start: int32(lo), End: int32(hi)})
	}
	return out
}

// Morsels partitions the table's rows into scan morsels of at most size
// rows (DefaultMorselRows when size <= 0).
func (t *Table) Morsels(size int) []Morsel {
	return MorselRange(t.NumRows(), size)
}

// MinMorselRows floors the balanced morsel granularity: below ~1K rows
// per-morsel scheduling overhead starts to show against the scan work
// itself.
const MinMorselRows = 1024

// stealFactor is the target number of morsels per worker when
// balancing: enough slack that a worker finishing early always finds
// victims with stealable tails, few enough that locality survives.
const stealFactor = 4

// BalancedMorselRows is the work-stealing partitioning hint: the
// configured morsel size when [0, n) already yields enough morsels to
// balance a pool of workers, otherwise a finer granularity targeting
// stealFactor morsels per worker. The automatic shrink floors at
// MinMorselRows; an explicitly smaller configured size is respected
// (tests and benchmarks force fine morsels that way). Sources pass
// their row counts through this before chunking so short scans — a
// selective residual box, a small index run — still split into
// stealable units instead of one morsel per core.
func BalancedMorselRows(n, size, workers int) int {
	if size <= 0 {
		size = DefaultMorselRows
	}
	if workers <= 1 || n <= 0 {
		return size
	}
	if target := n / (stealFactor * workers); target < size {
		if target < MinMorselRows {
			target = MinMorselRows
		}
		if target < size {
			size = target
		}
	}
	return size
}
