package storage

import (
	"testing"

	"hashstash/internal/types"
)

func TestMorselRange(t *testing.T) {
	for _, tc := range []struct {
		n, size int
		want    int
	}{
		{0, 100, 0},
		{-5, 100, 0},
		{1, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{250, 100, 3},
		{1000, 0, 1}, // default size is large
	} {
		got := MorselRange(tc.n, tc.size)
		if len(got) != tc.want {
			t.Fatalf("MorselRange(%d, %d) = %d morsels, want %d", tc.n, tc.size, len(got), tc.want)
		}
		// Morsels must tile [0, n) exactly.
		next := int32(0)
		for _, m := range got {
			if m.Start != next {
				t.Fatalf("morsel starts at %d, want %d", m.Start, next)
			}
			if m.Len() <= 0 || (tc.size > 0 && m.Len() > tc.size) {
				t.Fatalf("morsel %v has bad length", m)
			}
			next = m.End
		}
		if tc.n > 0 && next != int32(tc.n) {
			t.Fatalf("morsels end at %d, want %d", next, tc.n)
		}
	}
}

func TestTableMorsels(t *testing.T) {
	col := NewColumn("k", types.Int64)
	for i := int64(0); i < 1000; i++ {
		col.Append(types.NewInt(i))
	}
	tbl := NewTable("m", col)
	ms := tbl.Morsels(300)
	if len(ms) != 4 {
		t.Fatalf("%d morsels, want 4", len(ms))
	}
	total := 0
	for _, m := range ms {
		total += m.Len()
	}
	if total != 1000 {
		t.Fatalf("morsels cover %d rows, want 1000", total)
	}
	if got := tbl.Morsels(0); len(got) != 1 {
		t.Fatalf("default-size morsels = %d, want 1", len(got))
	}
}
