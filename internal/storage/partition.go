package storage

import (
	"fmt"
	"math"

	"hashstash/internal/types"
)

// Hash partitioning: the sharding layer splits every partitioned table
// into N disjoint fragments by the hash of one declared partition-key
// column. The same hash drives three places that must agree exactly —
// the bulk table split at load time, the batched exchange operator that
// repartitions a join side at query time, and the router's
// partition-key-equality shard resolution — so all of them go through
// PartitionHash/ShardOf or the column-wise Partitioner kernel below.

// PartitionHash hashes one value for shard placement. Numeric kinds
// hash their bit patterns through the splitmix64 finalizer, strings
// through FNV-1a; both give full-avalanche 64-bit hashes so any modulus
// of shard counts spreads evenly.
func PartitionHash(v types.Value) uint64 {
	switch v.Kind {
	case types.Int64, types.Date:
		return types.Mix64(uint64(v.I))
	case types.Float64:
		return types.Mix64(math.Float64bits(v.F))
	case types.String:
		return types.HashString(v.S)
	}
	return 0
}

// ShardOf maps a partition-key value to its shard in an n-shard layout.
func ShardOf(v types.Value, n int) int {
	if n <= 1 {
		return 0
	}
	return int(PartitionHash(v) % uint64(n))
}

// Partitioner is the vectorized partition kernel: it splits a batch of
// rows into per-shard row-index segments by partition-key hash. All
// scratch buffers are owned by the Partitioner and reused across calls,
// so steady-state partitioning allocates nothing.
type Partitioner struct {
	shards int

	hashes  []uint64
	dest    []int32
	counts  []int32
	offsets []int32
	fill    []int32
	perm    []int32
}

// NewPartitioner returns a kernel for an n-shard layout (n >= 1).
func NewPartitioner(n int) *Partitioner {
	if n < 1 {
		panic(fmt.Sprintf("storage: NewPartitioner(%d)", n))
	}
	return &Partitioner{
		shards:  n,
		counts:  make([]int32, n),
		offsets: make([]int32, n+1),
		fill:    make([]int32, n),
	}
}

// Shards reports the configured shard count.
func (p *Partitioner) Shards() int { return p.shards }

func (p *Partitioner) grow(n int) {
	if cap(p.hashes) < n {
		p.hashes = make([]uint64, n)
		p.dest = make([]int32, n)
		p.perm = make([]int32, n)
	}
	p.hashes = p.hashes[:n]
	p.dest = p.dest[:n]
	p.perm = p.perm[:n]
}

// Partition splits the first n rows of the key column (the whole column
// when n < 0) into per-shard segments. After the call, Rows(s) returns
// the row indices destined for shard s, in ascending (stable) row
// order. The kernel is column-wise: one typed pass computes hashes, one
// pass counts, one prefix sum, one scatter — no per-row interface
// dispatch and, steady state, no allocation.
func (p *Partitioner) Partition(key *Column, n int) {
	if n < 0 {
		n = key.Len()
	}
	p.grow(n)
	hashes := p.hashes
	switch key.Kind {
	case types.Int64, types.Date:
		for i, v := range key.Ints[:n] {
			hashes[i] = types.Mix64(uint64(v))
		}
	case types.Float64:
		for i, v := range key.Floats[:n] {
			hashes[i] = types.Mix64(math.Float64bits(v))
		}
	case types.String:
		for i, s := range key.Strs[:n] {
			hashes[i] = types.HashString(s)
		}
	default:
		panic(fmt.Sprintf("storage: cannot partition by %v column %q", key.Kind, key.Name))
	}

	ns := uint64(p.shards)
	dest := p.dest
	counts := p.counts
	for i := range counts {
		counts[i] = 0
	}
	for i, h := range hashes {
		d := int32(h % ns)
		dest[i] = d
		counts[d]++
	}
	p.offsets[0] = 0
	for s := 0; s < p.shards; s++ {
		p.offsets[s+1] = p.offsets[s] + counts[s]
		p.fill[s] = p.offsets[s]
	}
	for i := 0; i < n; i++ {
		d := dest[i]
		p.perm[p.fill[d]] = int32(i)
		p.fill[d]++
	}
}

// PartitionSel is Partition restricted to a selection: only the rows
// listed in sel are hashed and scattered, and Rows(s) afterwards
// returns the original row ids (sel entries) destined for shard s, in
// sel order. The exchange operator uses it to repartition the rows
// surviving a relation's filter without materializing them first.
func (p *Partitioner) PartitionSel(key *Column, sel []int32) {
	n := len(sel)
	p.grow(n)
	hashes := p.hashes
	switch key.Kind {
	case types.Int64, types.Date:
		for i, r := range sel {
			hashes[i] = types.Mix64(uint64(key.Ints[r]))
		}
	case types.Float64:
		for i, r := range sel {
			hashes[i] = types.Mix64(math.Float64bits(key.Floats[r]))
		}
	case types.String:
		for i, r := range sel {
			hashes[i] = types.HashString(key.Strs[r])
		}
	default:
		panic(fmt.Sprintf("storage: cannot partition by %v column %q", key.Kind, key.Name))
	}

	ns := uint64(p.shards)
	dest := p.dest
	counts := p.counts
	for i := range counts {
		counts[i] = 0
	}
	for i, h := range hashes {
		d := int32(h % ns)
		dest[i] = d
		counts[d]++
	}
	p.offsets[0] = 0
	for s := 0; s < p.shards; s++ {
		p.offsets[s+1] = p.offsets[s] + counts[s]
		p.fill[s] = p.offsets[s]
	}
	for i := 0; i < n; i++ {
		d := dest[i]
		p.perm[p.fill[d]] = sel[i]
		p.fill[d]++
	}
}

// Rows returns the row indices of the last Partition call destined for
// shard s, in ascending row order. The slice aliases kernel scratch and
// is valid until the next Partition call.
func (p *Partitioner) Rows(s int) []int32 {
	return p.perm[p.offsets[s]:p.offsets[s+1]]
}

// Dest returns the per-row destination shards of the last Partition
// call (aliases kernel scratch).
func (p *Partitioner) Dest() []int32 { return p.dest }

// AppendColumnGather appends the selected rows of src (same kind) to
// the column — the scatter half of table partitioning and the exchange
// operator's batched row movement.
func (c *Column) AppendColumnGather(src *Column, sel []int32) {
	dst := c.view()
	dst.AppendColumnGather(src, sel)
	c.Ints, c.Floats, c.Strs = dst.Ints, dst.Floats, dst.Strs
}

// CloneSchema returns an empty table with the same column names and
// kinds (no rows, no indexes).
func (t *Table) CloneSchema(name string) *Table {
	nt := NewTable(name)
	for _, c := range t.Cols {
		nt.AddColumn(NewColumn(c.Name, c.Kind))
	}
	return nt
}

// PartitionTable splits t into n fragment tables by the hash of the key
// column. Fragment s holds exactly the rows whose key hashes to shard
// s, in original row order. Secondary indexes are not carried over
// (fragments rebuild their own).
func PartitionTable(t *Table, key string, n int) ([]*Table, error) {
	kc := t.Column(key)
	if kc == nil {
		return nil, fmt.Errorf("storage: table %q has no partition-key column %q", t.Name, key)
	}
	frags := make([]*Table, n)
	for s := range frags {
		frags[s] = t.CloneSchema(t.Name)
	}
	if t.NumRows() == 0 {
		return frags, nil
	}
	part := NewPartitioner(n)
	part.Partition(kc, -1)
	for s := 0; s < n; s++ {
		rows := part.Rows(s)
		if len(rows) == 0 {
			continue
		}
		for ci, col := range t.Cols {
			frags[s].Cols[ci].AppendColumnGather(col, rows)
		}
	}
	return frags, nil
}
