package storage

import (
	"testing"

	"hashstash/internal/types"
)

// TestPartitionerMatchesShardOf: the vectorized kernel must agree with
// the scalar ShardOf on every row and kind — the router's equality
// resolution and the bulk split must never disagree.
func TestPartitionerMatchesShardOf(t *testing.T) {
	const n, shards = 10_000, 4
	cols := map[string]*Column{
		"int": NewColumn("int", types.Int64),
		"flt": NewColumn("flt", types.Float64),
		"str": NewColumn("str", types.String),
		"dat": NewColumn("dat", types.Date),
	}
	for i := 0; i < n; i++ {
		cols["int"].Append(types.NewInt(int64(i * 37)))
		cols["flt"].Append(types.NewFloat(float64(i) * 0.25))
		cols["str"].Append(types.NewString(string(rune('a'+i%26)) + "key"))
		cols["dat"].Append(types.NewDate(int64(9000 + i)))
	}
	p := NewPartitioner(shards)
	for name, col := range cols {
		p.Partition(col, -1)
		dest := p.Dest()
		for i := 0; i < n; i++ {
			want := ShardOf(col.Value(i), shards)
			if int(dest[i]) != want {
				t.Fatalf("%s row %d: kernel says shard %d, ShardOf says %d", name, i, dest[i], want)
			}
		}
		// Rows(s) must be a stable (ascending) permutation covering
		// every row exactly once.
		seen := make([]bool, n)
		total := 0
		for s := 0; s < shards; s++ {
			rows := p.Rows(s)
			for j, r := range rows {
				if j > 0 && rows[j-1] >= r {
					t.Fatalf("%s shard %d: rows not ascending at %d", name, s, j)
				}
				if seen[r] {
					t.Fatalf("%s: row %d assigned twice", name, r)
				}
				seen[r] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("%s: %d rows scattered, want %d", name, total, n)
		}
	}
}

// TestPartitionSel: the selection-aware kernel hashes only the selected
// rows and reports original row ids.
func TestPartitionSel(t *testing.T) {
	col := intCol("k", 10, 11, 12, 13, 14, 15, 16, 17)
	sel := []int32{1, 3, 5, 7}
	p := NewPartitioner(3)
	p.PartitionSel(col, sel)
	total := 0
	for s := 0; s < 3; s++ {
		for _, r := range p.Rows(s) {
			if r%2 == 0 {
				t.Fatalf("unselected row %d scattered", r)
			}
			if got := ShardOf(col.Value(int(r)), 3); got != s {
				t.Fatalf("row %d in shard %d, ShardOf says %d", r, s, got)
			}
			total++
		}
	}
	if total != len(sel) {
		t.Fatalf("%d rows scattered, want %d", total, len(sel))
	}
}

// TestPartitionerZeroAlloc: steady-state partitioning — both kernels,
// after the first warm-up call — allocates nothing.
func TestPartitionerZeroAlloc(t *testing.T) {
	col := NewColumn("k", types.Int64)
	for i := 0; i < 4096; i++ {
		col.Append(types.NewInt(int64(i) * 7919))
	}
	sel := make([]int32, 2048)
	for i := range sel {
		sel[i] = int32(i * 2)
	}
	p := NewPartitioner(4)
	p.Partition(col, -1) // warm up scratch
	p.PartitionSel(col, sel)
	if allocs := testing.AllocsPerRun(20, func() { p.Partition(col, -1) }); allocs != 0 {
		t.Errorf("Partition: %v allocs/run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { p.PartitionSel(col, sel) }); allocs != 0 {
		t.Errorf("PartitionSel: %v allocs/run, want 0", allocs)
	}
}

// TestPartitionTable: fragments preserve every row exactly once, in
// original order, and route by the key hash.
func TestPartitionTable(t *testing.T) {
	tab := NewTable("t")
	tab.AddColumn(NewColumn("k", types.Int64))
	tab.AddColumn(NewColumn("v", types.String))
	const n = 1000
	for i := 0; i < n; i++ {
		tab.AppendRow(types.NewInt(int64(i)), types.NewString(string(rune('A'+i%26))))
	}
	frags, err := PartitionTable(tab, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	total := 0
	for s, f := range frags {
		if f.Name != "t" {
			t.Fatalf("fragment %d named %q", s, f.Name)
		}
		kc, vc := f.Column("k"), f.Column("v")
		prev := int64(-1)
		for i := 0; i < f.NumRows(); i++ {
			k := kc.Value(i).I
			if ShardOf(types.NewInt(k), 4) != s {
				t.Fatalf("key %d landed on shard %d", k, s)
			}
			if k <= prev {
				t.Fatalf("shard %d: rows out of original order (%d after %d)", s, k, prev)
			}
			prev = k
			if vc.Value(i).S != string(rune('A'+k%26)) {
				t.Fatalf("key %d: payload column desynced", k)
			}
			if seen[k] {
				t.Fatalf("key %d appears twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("fragments hold %d rows, want %d", total, n)
	}

	if _, err := PartitionTable(tab, "nope", 4); err == nil {
		t.Fatal("partitioning by a missing column must fail")
	}
}
