package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hashstash/internal/types"
)

func intCol(name string, vals ...int64) *Column {
	c := NewColumn(name, types.Int64)
	c.Ints = vals
	return c
}

func TestColumnAppendValue(t *testing.T) {
	ci := NewColumn("i", types.Int64)
	cf := NewColumn("f", types.Float64)
	cs := NewColumn("s", types.String)
	cd := NewColumn("d", types.Date)
	ci.Append(types.NewInt(7))
	cf.Append(types.NewFloat(1.5))
	cs.Append(types.NewString("x"))
	cd.Append(types.NewDate(42))
	cd.Append(types.NewInt(43)) // int into date column is allowed
	if ci.Value(0).I != 7 || cf.Value(0).F != 1.5 || cs.Value(0).S != "x" {
		t.Error("column values wrong after append")
	}
	if cd.Len() != 2 || cd.Value(1).I != 43 || cd.Value(1).Kind != types.Date {
		t.Errorf("date column: %v", cd.Value(1))
	}
}

func TestColumnAppendKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	NewColumn("i", types.Int64).Append(types.NewString("x"))
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable("t", intCol("a"), NewColumn("b", types.String))
	tbl.AppendRow(types.NewInt(1), types.NewString("one"))
	tbl.AppendRow(types.NewInt(2), types.NewString("two"))
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Column("a") == nil || tbl.Column("zz") != nil {
		t.Error("Column lookup broken")
	}
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex broken")
	}
	if err := tbl.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if tbl.ByteSize() <= 0 {
		t.Error("ByteSize should be positive")
	}
}

func TestTableCheckDetectsRaggedColumns(t *testing.T) {
	tbl := NewTable("t", intCol("a", 1, 2), intCol("b", 1))
	if err := tbl.Check(); err == nil {
		t.Error("Check should fail on ragged columns")
	}
}

func TestTableDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate column")
		}
	}()
	NewTable("t", intCol("a"), intCol("a"))
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong arity")
		}
	}()
	NewTable("t", intCol("a")).AppendRow()
}

func TestIndexRangeInt(t *testing.T) {
	tbl := NewTable("t", intCol("a", 5, 1, 9, 3, 7, 3))
	if err := tbl.BuildIndexOn("a"); err != nil {
		t.Fatal(err)
	}
	ix := tbl.IndexOn("a")
	if ix == nil {
		t.Fatal("index missing")
	}

	collect := func(rows []int32) []int64 {
		var out []int64
		for _, r := range rows {
			out = append(out, tbl.Column("a").Ints[r])
		}
		return out
	}

	// Closed range [3, 7].
	got := collect(ix.Range(types.NewInt(3), types.NewInt(7), true, true, true, true))
	want := []int64{3, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("range [3,7] = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range [3,7] = %v, want %v", got, want)
		}
	}

	// Open lower bound (3, 7].
	got = collect(ix.Range(types.NewInt(3), types.NewInt(7), true, true, false, true))
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("range (3,7] = %v", got)
	}

	// Unbounded below, exclusive above: (-inf, 5).
	got = collect(ix.Range(types.Value{}, types.NewInt(5), false, true, false, false))
	if len(got) != 3 {
		t.Errorf("range <5 = %v", got)
	}

	// Fully unbounded returns everything.
	if n := len(ix.Range(types.Value{}, types.Value{}, false, false, false, false)); n != 6 {
		t.Errorf("unbounded range returned %d rows", n)
	}

	// Empty range.
	if rows := ix.Range(types.NewInt(100), types.NewInt(200), true, true, true, true); len(rows) != 0 {
		t.Errorf("expected empty range, got %v", rows)
	}
}

func TestIndexRangeString(t *testing.T) {
	c := NewColumn("s", types.String)
	c.Strs = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "BUILDING"}
	ix := BuildIndex(c)
	rows := ix.Range(types.NewString("BUILDING"), types.NewString("BUILDING"), true, true, true, true)
	if len(rows) != 2 {
		t.Errorf("equality via range returned %d rows", len(rows))
	}
}

func TestIndexBuildOnMissingColumn(t *testing.T) {
	tbl := NewTable("t", intCol("a", 1))
	if err := tbl.BuildIndexOn("nope"); err == nil {
		t.Error("expected error for missing column")
	}
}

// Property: for random data and random closed ranges, the index returns
// exactly the rows a full scan would.
func TestIndexRangeMatchesScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(50))
		}
		col := intCol("a", vals...)
		ix := BuildIndex(col)
		lo := int64(r.Intn(50))
		hi := lo + int64(r.Intn(10))
		got := ix.Range(types.NewInt(lo), types.NewInt(hi), true, true, true, true)
		want := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, row := range got {
			v := vals[row]
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIndexPermIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	ix := BuildIndex(intCol("a", vals...))
	sorted := sort.SliceIsSorted(ix.Perm, func(a, b int) bool {
		return vals[ix.Perm[a]] < vals[ix.Perm[b]]
	})
	if !sorted {
		t.Error("index permutation is not sorted by value")
	}
}

func TestVecBasics(t *testing.T) {
	for _, kind := range []types.Kind{types.Int64, types.Float64, types.String, types.Date} {
		v := NewVec(kind)
		if v.Len() != 0 {
			t.Errorf("new vec len %d", v.Len())
		}
		switch kind {
		case types.Int64:
			v.Append(types.NewInt(1))
		case types.Float64:
			v.Append(types.NewFloat(1))
		case types.String:
			v.Append(types.NewString("a"))
		case types.Date:
			v.Append(types.NewDate(1))
		}
		if v.Len() != 1 {
			t.Errorf("%v vec len after append = %d", kind, v.Len())
		}
		if v.Value(0).Kind != kind {
			t.Errorf("%v vec value kind = %v", kind, v.Value(0).Kind)
		}
		v.Reset()
		if v.Len() != 0 {
			t.Errorf("%v vec len after reset = %d", kind, v.Len())
		}
	}
}

func TestVecAppendFrom(t *testing.T) {
	col := intCol("a", 10, 20, 30)
	v := NewVec(types.Int64)
	v.AppendFrom(col, 2)
	v.AppendFrom(col, 0)
	if v.Len() != 2 || v.Ints[0] != 30 || v.Ints[1] != 10 {
		t.Errorf("AppendFrom result: %v", v.Ints)
	}
}

func TestBatchAndSchema(t *testing.T) {
	schema := Schema{
		{Ref: ColRef{Table: "l", Column: "qty"}, Kind: types.Int64},
		{Ref: ColRef{Column: "rev"}, Kind: types.Float64},
	}
	b := NewBatch(schema)
	if b.Len() != 0 {
		t.Errorf("empty batch len %d", b.Len())
	}
	if schema.IndexOf(ColRef{Table: "l", Column: "qty"}) != 0 {
		t.Error("IndexOf failed")
	}
	if schema.IndexOf(ColRef{Table: "x", Column: "y"}) != -1 {
		t.Error("IndexOf should be -1 for missing")
	}
	if schema.MustIndexOf(ColRef{Column: "rev"}) != 1 {
		t.Error("MustIndexOf failed")
	}
	b.Cols[0].Append(types.NewInt(1))
	b.Cols[1].Append(types.NewFloat(2))
	if b.Len() != 1 {
		t.Errorf("batch len %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("batch reset failed")
	}

	if (ColRef{Table: "l", Column: "qty"}).String() != "l.qty" {
		t.Error("ColRef.String with table")
	}
	if (ColRef{Column: "rev"}).String() != "rev" {
		t.Error("ColRef.String computed")
	}
}

func TestMustIndexOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndexOf should panic for missing column")
		}
	}()
	Schema{}.MustIndexOf(ColRef{Column: "x"})
}
