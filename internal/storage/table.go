package storage

import (
	"fmt"

	"hashstash/internal/types"
)

// Table is an in-memory columnar table. Secondary indexes are built
// explicitly on selection attributes (the paper's setup indexes every
// attribute its workloads filter on).
type Table struct {
	Name    string
	Cols    []*Column
	byName  map[string]int
	indexes map[string]*Index
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, byName: make(map[string]int), indexes: make(map[string]*Index)}
	for _, c := range cols {
		t.AddColumn(c)
	}
	return t
}

// AddColumn appends a column definition. All columns must stay the same
// length; Table.Check verifies this.
func (t *Table) AddColumn(c *Column) {
	if _, dup := t.byName[c.Name]; dup {
		panic(fmt.Sprintf("storage: duplicate column %q in table %q", c.Name, t.Name))
	}
	t.byName[c.Name] = len(t.Cols)
	t.Cols = append(t.Cols, c)
}

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Cols[i]
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// NumRows reports the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// AppendRow adds one row; values must match the column kinds in order.
func (t *Table) AppendRow(vals ...types.Value) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("storage: AppendRow got %d values for %d columns", len(vals), len(t.Cols)))
	}
	for i, v := range vals {
		t.Cols[i].Append(v)
	}
}

// Check validates that all columns have equal length.
func (t *Table) Check() error {
	n := t.NumRows()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("storage: table %q column %q has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// BuildIndexOn constructs (or rebuilds) a sorted secondary index on the
// named column.
func (t *Table) BuildIndexOn(col string) error {
	c := t.Column(col)
	if c == nil {
		return fmt.Errorf("storage: table %q has no column %q", t.Name, col)
	}
	t.indexes[col] = BuildIndex(c)
	return nil
}

// IndexOn returns the secondary index on the named column, or nil.
func (t *Table) IndexOn(col string) *Index { return t.indexes[col] }

// ByteSize estimates the memory footprint of the table's data arrays.
func (t *Table) ByteSize() int64 {
	var total int64
	for _, c := range t.Cols {
		switch c.Kind {
		case types.Int64, types.Date:
			total += int64(len(c.Ints)) * 8
		case types.Float64:
			total += int64(len(c.Floats)) * 8
		case types.String:
			for _, s := range c.Strs {
				total += int64(len(s)) + 16
			}
		}
	}
	for _, ix := range t.indexes {
		total += int64(len(ix.Perm)) * 4
	}
	return total
}
