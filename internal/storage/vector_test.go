package storage

import (
	"math"
	"math/rand"
	"testing"

	"hashstash/internal/types"
)

// fillRandVec populates a vector with n random values of its kind.
func fillRandVec(rng *rand.Rand, v *Vec, n int) {
	strs := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	for i := 0; i < n; i++ {
		switch v.Kind {
		case types.Int64, types.Date:
			v.Ints = append(v.Ints, rng.Int63())
		case types.Float64:
			v.Floats = append(v.Floats, rng.NormFloat64())
		case types.String:
			v.Strs = append(v.Strs, strs[rng.Intn(len(strs))])
		}
	}
}

// TestAppendGatherPreservesRowOrder is the property test of the
// selection-vector contract: materializing any selection via the bulk
// gather kernel produces exactly the rows the per-row path produces, in
// selection order, for every kind.
func TestAppendGatherPreservesRowOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []types.Kind{types.Int64, types.Float64, types.String, types.Date}
	for _, kind := range kinds {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(3000)
			src := NewVec(kind)
			fillRandVec(rng, src, n)

			// Random selection: arbitrary subset in arbitrary order, with
			// duplicates allowed (probes select the same row once per match).
			sel := make([]int32, rng.Intn(2*n))
			for i := range sel {
				sel[i] = int32(rng.Intn(n))
			}

			got := NewVec(kind)
			got.AppendGather(src, sel)

			want := NewVec(kind)
			for _, i := range sel {
				want.Append(src.Value(int(i)))
			}

			requireVecEqual(t, got, want)
		}
	}
}

// TestAppendRangeMatchesPerRow checks the contiguous-run kernel against
// the per-row path for every kind and random sub-ranges.
func TestAppendRangeMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	kinds := []types.Kind{types.Int64, types.Float64, types.String, types.Date}
	for _, kind := range kinds {
		n := 500
		src := NewVec(kind)
		fillRandVec(rng, src, n)
		for trial := 0; trial < 20; trial++ {
			start := rng.Intn(n)
			end := start + rng.Intn(n-start)

			got := NewVec(kind)
			got.AppendRange(src, start, end)

			want := NewVec(kind)
			for i := start; i < end; i++ {
				want.Append(src.Value(i))
			}
			requireVecEqual(t, got, want)
		}
	}
}

// TestColumnKernels checks AppendColumnRange/AppendColumnGather against
// the per-row AppendFrom path.
func TestColumnKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	kinds := []types.Kind{types.Int64, types.Float64, types.String, types.Date}
	for _, kind := range kinds {
		col := NewColumn("c", kind)
		vec := NewVec(kind)
		fillRandVec(rng, vec, 400)
		col.AppendVec(vec)
		if col.Len() != 400 {
			t.Fatalf("AppendVec: column has %d rows, want 400", col.Len())
		}

		sel := make([]int32, 100)
		for i := range sel {
			sel[i] = int32(rng.Intn(400))
		}
		got := NewVec(kind)
		got.AppendColumnGather(col, sel)
		got.AppendColumnRange(col, 50, 150)

		want := NewVec(kind)
		for _, i := range sel {
			want.AppendFrom(col, i)
		}
		for i := int32(50); i < 150; i++ {
			want.AppendFrom(col, i)
		}
		requireVecEqual(t, got, want)
	}
}

// TestScratchBuffersIndependent ensures the distinct scratch buffers
// never alias each other within one operator call.
func TestScratchBuffersIndependent(t *testing.T) {
	b := NewBatch(Schema{{Ref: ColRef{Column: "x"}, Kind: types.Int64}})
	sc := b.Scratch()
	sel := sc.SeqSel(64)
	ents := sc.Ents(64)
	hash := sc.Hash(64)
	masks := sc.MasksN(64)
	miss := sc.Miss(64)
	enc := sc.Enc(2, 64)
	f0 := sc.Floats(0, 64)
	f1 := sc.Floats(1, 64)

	for i := range sel {
		sel[i] = int32(i)
	}
	ents = append(ents, 7, 8, 9)
	for i := range hash {
		hash[i] = uint64(i) * 3
	}
	enc[0][0], enc[1][0] = 11, 22
	f0[0], f1[0] = 1.5, 2.5
	masks[0] = 99
	miss[0] = true

	if sel[0] != 0 || sel[63] != 63 {
		t.Fatal("sel clobbered")
	}
	if ents[0] != 7 {
		t.Fatal("ents clobbered")
	}
	if hash[1] != 3 {
		t.Fatal("hash clobbered")
	}
	if enc[0][0] != 11 || enc[1][0] != 22 {
		t.Fatal("enc columns alias")
	}
	if f0[0] != 1.5 || f1[0] != 2.5 {
		t.Fatal("float scratch depths alias")
	}
	if masks[0] != 99 || !miss[0] {
		t.Fatal("masks/miss clobbered")
	}
	// Re-obtaining a buffer with the same size returns the same memory
	// (no steady-state allocation).
	sel2 := sc.Sel(64)
	if &sel2[0] != &sel[0] {
		t.Fatal("Sel reallocated at steady state")
	}
}

func requireVecEqual(t *testing.T, got, want *Vec) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length: got %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		switch want.Kind {
		case types.Int64, types.Date:
			if got.Ints[i] != want.Ints[i] {
				t.Fatalf("row %d: got %d, want %d", i, got.Ints[i], want.Ints[i])
			}
		case types.Float64:
			if math.Float64bits(got.Floats[i]) != math.Float64bits(want.Floats[i]) {
				t.Fatalf("row %d: got %v, want %v", i, got.Floats[i], want.Floats[i])
			}
		case types.String:
			if got.Strs[i] != want.Strs[i] {
				t.Fatalf("row %d: got %q, want %q", i, got.Strs[i], want.Strs[i])
			}
		}
	}
}
