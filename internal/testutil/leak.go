// Package testutil holds shared test helpers. It is imported only
// from _test files.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a
// cleanup that fails the test if goroutines are still leaked after a
// grace period. Call it first in a test that starts servers,
// schedulers or chaos storms: a pipeline worker, window timer or
// connection handler that outlives its owner is a containment bug
// even when results look right.
//
// The check polls because legitimate teardown is asynchronous (closed
// connections unwind, timers fire and exit). Only a count still above
// the baseline after ~3s fails, with full stacks dumped for triage.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s",
				before, now, interesting(string(buf[:n])))
		}
	})
}

// interesting trims the stack dump to goroutines likely to be ours —
// testing-harness and runtime housekeeping goroutines are noise.
func interesting(stacks string) string {
	var keep []string
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "testing.") && !strings.Contains(g, "hashstash") {
			continue
		}
		if strings.Contains(g, "runtime.gopark") && !strings.Contains(g, "hashstash") {
			continue
		}
		keep = append(keep, g)
	}
	return strings.Join(keep, "\n\n")
}
