// Package tpch generates a deterministic TPC-H-style database at a
// configurable scale factor. It reproduces the schema subset, key
// relationships and value distributions that the HashStash workloads
// touch (CUSTOMER, ORDERS, LINEITEM, PART, SUPPLIER), plus the paper's
// non-standard CUSTOMER.c_age column that the running examples group and
// filter on.
//
// The generator is fully deterministic for a given (scale factor, seed)
// pair: it uses a private splitmix64 stream per table, so adding columns
// to one table never perturbs another.
package tpch

import (
	"fmt"

	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Base cardinalities at scale factor 1.0 (TPC-H specification).
const (
	baseCustomers = 150000
	baseOrders    = 1500000
	baseParts     = 200000
	baseSuppliers = 10000
)

// Date range of o_orderdate per the TPC-H spec.
var (
	orderDateLo = types.MustParseDate("1992-01-01")
	orderDateHi = types.MustParseDate("1998-08-02")
)

// rng is a splitmix64 pseudo-random stream.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return types.Mix64(r.state)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		panic("tpch: intn on non-positive bound")
	}
	return int64(r.next() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi].
func (r *rng) rangeInt(lo, hi int64) int64 { return lo + r.intn(hi-lo+1) }

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var partTypes = []string{
	"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS",
	"ECONOMY BURNISHED STEEL", "PROMO BRUSHED NICKEL", "LARGE ANODIZED COPPER",
}

var orderStatus = []string{"F", "O", "P"}

var returnFlags = []string{"N", "R", "A"}

// Config controls database generation.
type Config struct {
	// SF is the scale factor; 1.0 is the full TPC-H size. Typical test
	// values are 0.01-0.1.
	SF float64
	// Seed perturbs all random streams; 0 selects the default seed.
	Seed uint64
	// SkipIndexes suppresses secondary index construction (used by tests
	// that build their own).
	SkipIndexes bool
}

// DB bundles the generated tables.
type DB struct {
	Customer *storage.Table
	Orders   *storage.Table
	Lineitem *storage.Table
	Part     *storage.Table
	Supplier *storage.Table
}

// Tables returns all generated tables.
func (db *DB) Tables() []*storage.Table {
	return []*storage.Table{db.Customer, db.Orders, db.Lineitem, db.Part, db.Supplier}
}

// Generate builds the database. Cardinalities scale linearly with SF but
// never drop below a small floor so that even tiny test databases
// exercise every code path.
func Generate(cfg Config) (*DB, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %v", cfg.SF)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x48617368 // "Hash"
	}
	scale := func(base int) int {
		n := int(float64(base) * cfg.SF)
		if n < 20 {
			n = 20
		}
		return n
	}
	nCust := scale(baseCustomers)
	nOrd := scale(baseOrders)
	nPart := scale(baseParts)
	nSupp := scale(baseSuppliers)

	db := &DB{
		Customer: genCustomer(nCust, seed^1),
		Part:     genPart(nPart, seed^2),
		Supplier: genSupplier(nSupp, seed^3),
	}
	db.Orders = genOrders(nOrd, nCust, seed^4)
	db.Lineitem = genLineitem(db.Orders, nPart, nSupp, seed^5)

	if !cfg.SkipIndexes {
		if err := BuildIndexes(db); err != nil {
			return nil, err
		}
	}
	for _, t := range db.Tables() {
		if err := t.Check(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// BuildIndexes constructs the secondary indexes on every selection
// attribute the HashStash workloads filter on (mirroring the paper's
// experimental setup).
func BuildIndexes(db *DB) error {
	want := map[*storage.Table][]string{
		db.Customer: {"c_age", "c_mktsegment", "c_acctbal"},
		db.Orders:   {"o_orderdate", "o_totalprice"},
		db.Lineitem: {"l_shipdate", "l_quantity"},
		db.Part:     {"p_brand", "p_size"},
		db.Supplier: {"s_acctbal"},
	}
	for t, cols := range want {
		for _, col := range cols {
			if err := t.BuildIndexOn(col); err != nil {
				return err
			}
		}
	}
	return nil
}

func genCustomer(n int, seed uint64) *storage.Table {
	r := newRNG(seed)
	key := storage.NewColumn("c_custkey", types.Int64)
	name := storage.NewColumn("c_name", types.String)
	age := storage.NewColumn("c_age", types.Int64)
	seg := storage.NewColumn("c_mktsegment", types.String)
	nat := storage.NewColumn("c_nationkey", types.Int64)
	bal := storage.NewColumn("c_acctbal", types.Float64)
	for i := 0; i < n; i++ {
		key.Ints = append(key.Ints, int64(i+1))
		name.Strs = append(name.Strs, fmt.Sprintf("Customer#%09d", i+1))
		age.Ints = append(age.Ints, r.rangeInt(18, 92))
		seg.Strs = append(seg.Strs, mktSegments[r.intn(int64(len(mktSegments)))])
		nat.Ints = append(nat.Ints, r.intn(25))
		bal.Floats = append(bal.Floats, -999.99+r.float()*(9999.99+999.99))
	}
	return storage.NewTable("customer", key, name, age, seg, nat, bal)
}

func genOrders(n, nCust int, seed uint64) *storage.Table {
	r := newRNG(seed)
	key := storage.NewColumn("o_orderkey", types.Int64)
	cust := storage.NewColumn("o_custkey", types.Int64)
	date := storage.NewColumn("o_orderdate", types.Date)
	price := storage.NewColumn("o_totalprice", types.Float64)
	prio := storage.NewColumn("o_shippriority", types.Int64)
	status := storage.NewColumn("o_orderstatus", types.String)
	span := orderDateHi - orderDateLo + 1
	for i := 0; i < n; i++ {
		key.Ints = append(key.Ints, int64(i+1))
		cust.Ints = append(cust.Ints, r.rangeInt(1, int64(nCust)))
		date.Ints = append(date.Ints, orderDateLo+r.intn(span))
		price.Floats = append(price.Floats, 1000+r.float()*450000)
		prio.Ints = append(prio.Ints, 0)
		status.Strs = append(status.Strs, orderStatus[r.intn(int64(len(orderStatus)))])
	}
	return storage.NewTable("orders", key, cust, date, price, prio, status)
}

func genLineitem(orders *storage.Table, nPart, nSupp int, seed uint64) *storage.Table {
	r := newRNG(seed)
	okey := storage.NewColumn("l_orderkey", types.Int64)
	pkey := storage.NewColumn("l_partkey", types.Int64)
	skey := storage.NewColumn("l_suppkey", types.Int64)
	lnum := storage.NewColumn("l_linenumber", types.Int64)
	qty := storage.NewColumn("l_quantity", types.Int64)
	eprice := storage.NewColumn("l_extendedprice", types.Float64)
	disc := storage.NewColumn("l_discount", types.Float64)
	ship := storage.NewColumn("l_shipdate", types.Date)
	rflag := storage.NewColumn("l_returnflag", types.String)

	orderKeys := orders.Column("o_orderkey").Ints
	orderDates := orders.Column("o_orderdate").Ints
	for i := range orderKeys {
		lines := int(r.rangeInt(1, 7))
		for ln := 0; ln < lines; ln++ {
			q := r.rangeInt(1, 50)
			okey.Ints = append(okey.Ints, orderKeys[i])
			pkey.Ints = append(pkey.Ints, r.rangeInt(1, int64(nPart)))
			skey.Ints = append(skey.Ints, r.rangeInt(1, int64(nSupp)))
			lnum.Ints = append(lnum.Ints, int64(ln+1))
			qty.Ints = append(qty.Ints, q)
			eprice.Floats = append(eprice.Floats, float64(q)*(900+r.float()*1100))
			disc.Floats = append(disc.Floats, float64(r.intn(11))/100)
			ship.Ints = append(ship.Ints, orderDates[i]+r.rangeInt(1, 121))
			rflag.Strs = append(rflag.Strs, returnFlags[r.intn(int64(len(returnFlags)))])
		}
	}
	return storage.NewTable("lineitem", okey, pkey, skey, lnum, qty, eprice, disc, ship, rflag)
}

func genPart(n int, seed uint64) *storage.Table {
	r := newRNG(seed)
	key := storage.NewColumn("p_partkey", types.Int64)
	name := storage.NewColumn("p_name", types.String)
	mfgr := storage.NewColumn("p_mfgr", types.String)
	brand := storage.NewColumn("p_brand", types.String)
	ptype := storage.NewColumn("p_type", types.String)
	size := storage.NewColumn("p_size", types.Int64)
	for i := 0; i < n; i++ {
		m := r.rangeInt(1, 5)
		b := m*10 + r.rangeInt(1, 5)
		key.Ints = append(key.Ints, int64(i+1))
		name.Strs = append(name.Strs, fmt.Sprintf("part %06d", i+1))
		mfgr.Strs = append(mfgr.Strs, fmt.Sprintf("Manufacturer#%d", m))
		brand.Strs = append(brand.Strs, fmt.Sprintf("Brand#%d", b))
		ptype.Strs = append(ptype.Strs, partTypes[r.intn(int64(len(partTypes)))])
		size.Ints = append(size.Ints, r.rangeInt(1, 50))
	}
	return storage.NewTable("part", key, name, mfgr, brand, ptype, size)
}

func genSupplier(n int, seed uint64) *storage.Table {
	r := newRNG(seed)
	key := storage.NewColumn("s_suppkey", types.Int64)
	name := storage.NewColumn("s_name", types.String)
	nat := storage.NewColumn("s_nationkey", types.Int64)
	bal := storage.NewColumn("s_acctbal", types.Float64)
	for i := 0; i < n; i++ {
		key.Ints = append(key.Ints, int64(i+1))
		name.Strs = append(name.Strs, fmt.Sprintf("Supplier#%09d", i+1))
		nat.Ints = append(nat.Ints, r.intn(25))
		bal.Floats = append(bal.Floats, -999.99+r.float()*(9999.99+999.99))
	}
	return storage.NewTable("supplier", key, name, nat, bal)
}

// OrderDateRange reports the generated o_orderdate domain (used by the
// workload generator to position predicate windows).
func OrderDateRange() (lo, hi int64) { return orderDateLo, orderDateHi }
