package tpch

import (
	"testing"

	"hashstash/internal/types"
)

func TestGenerateSmall(t *testing.T) {
	db, err := Generate(Config{SF: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range db.Tables() {
		if tbl.NumRows() < 20 {
			t.Errorf("table %q has %d rows, want >= 20 (floor)", tbl.Name, tbl.NumRows())
		}
		if err := tbl.Check(); err != nil {
			t.Errorf("table %q: %v", tbl.Name, err)
		}
	}
	// Lineitem should average ~4 lines per order.
	ratio := float64(db.Lineitem.NumRows()) / float64(db.Orders.NumRows())
	if ratio < 2 || ratio > 6 {
		t.Errorf("lineitem/order ratio = %f", ratio)
	}
}

func TestGenerateInvalidSF(t *testing.T) {
	if _, err := Generate(Config{SF: 0}); err == nil {
		t.Error("SF=0 should fail")
	}
	if _, err := Generate(Config{SF: -1}); err == nil {
		t.Error("SF<0 should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.Lineitem.NumRows(), b.Lineitem.NumRows())
	}
	ca, cb := a.Lineitem.Column("l_extendedprice"), b.Lineitem.Column("l_extendedprice")
	for i := 0; i < a.Lineitem.NumRows(); i += 97 {
		if ca.Floats[i] != cb.Floats[i] {
			t.Fatalf("row %d differs: %f vs %f", i, ca.Floats[i], cb.Floats[i])
		}
	}
	// A different seed must change the data.
	c, err := Generate(Config{SF: 0.002, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	cc := c.Lineitem.Column("l_extendedprice")
	n := a.Lineitem.NumRows()
	if c.Lineitem.NumRows() < n {
		n = c.Lineitem.NumRows()
	}
	for i := 0; i < n; i++ {
		if ca.Floats[i] != cc.Floats[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced identical lineitem prices")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db, err := Generate(Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	nCust := int64(db.Customer.NumRows())
	for _, ck := range db.Orders.Column("o_custkey").Ints {
		if ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %d out of range [1,%d]", ck, nCust)
		}
	}
	nPart := int64(db.Part.NumRows())
	nSupp := int64(db.Supplier.NumRows())
	orderDates := make(map[int64]int64, db.Orders.NumRows())
	okeys := db.Orders.Column("o_orderkey").Ints
	odates := db.Orders.Column("o_orderdate").Ints
	for i, k := range okeys {
		orderDates[k] = odates[i]
	}
	lkeys := db.Lineitem.Column("l_orderkey").Ints
	lship := db.Lineitem.Column("l_shipdate").Ints
	lpart := db.Lineitem.Column("l_partkey").Ints
	lsupp := db.Lineitem.Column("l_suppkey").Ints
	for i := range lkeys {
		od, ok := orderDates[lkeys[i]]
		if !ok {
			t.Fatalf("l_orderkey %d has no order", lkeys[i])
		}
		if lship[i] <= od || lship[i] > od+121 {
			t.Fatalf("l_shipdate %d not within (orderdate, orderdate+121]", lship[i])
		}
		if lpart[i] < 1 || lpart[i] > nPart {
			t.Fatalf("l_partkey %d out of range", lpart[i])
		}
		if lsupp[i] < 1 || lsupp[i] > nSupp {
			t.Fatalf("l_suppkey %d out of range", lsupp[i])
		}
	}
}

func TestValueDomains(t *testing.T) {
	db, err := Generate(Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range db.Customer.Column("c_age").Ints {
		if age < 18 || age > 92 {
			t.Fatalf("c_age %d out of [18,92]", age)
		}
	}
	segs := map[string]bool{}
	for _, s := range db.Customer.Column("c_mktsegment").Strs {
		segs[s] = true
	}
	if len(segs) != 5 {
		t.Errorf("mktsegment cardinality = %d, want 5", len(segs))
	}
	lo, hi := OrderDateRange()
	if lo != types.MustParseDate("1992-01-01") || hi != types.MustParseDate("1998-08-02") {
		t.Errorf("OrderDateRange = %d, %d", lo, hi)
	}
	for _, d := range db.Orders.Column("o_orderdate").Ints {
		if d < lo || d > hi {
			t.Fatalf("o_orderdate %s out of range", types.FormatDate(d))
		}
	}
	for _, q := range db.Lineitem.Column("l_quantity").Ints {
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity %d out of [1,50]", q)
		}
	}
	for _, d := range db.Lineitem.Column("l_discount").Floats {
		if d < 0 || d > 0.10001 {
			t.Fatalf("l_discount %f out of [0,0.1]", d)
		}
	}
}

func TestIndexesBuilt(t *testing.T) {
	db, err := Generate(Config{SF: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string][]string{
		"customer": {"c_age", "c_mktsegment", "c_acctbal"},
		"orders":   {"o_orderdate", "o_totalprice"},
		"lineitem": {"l_shipdate", "l_quantity"},
		"part":     {"p_brand", "p_size"},
		"supplier": {"s_acctbal"},
	}
	for _, tbl := range db.Tables() {
		for _, col := range checks[tbl.Name] {
			if tbl.IndexOn(col) == nil {
				t.Errorf("table %q missing index on %q", tbl.Name, col)
			}
		}
	}
	// SkipIndexes suppresses them.
	db2, err := Generate(Config{SF: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Orders.IndexOn("o_orderdate") != nil {
		t.Error("SkipIndexes did not skip")
	}
}

func TestRNGHelpers(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.rangeInt(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("rangeInt out of bounds: %d", v)
		}
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of bounds: %f", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("intn(0) should panic")
		}
	}()
	r.intn(0)
}
