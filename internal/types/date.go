package types

import "fmt"

// Date handling uses days since the Unix epoch (1970-01-01) so that date
// predicates are plain integer intervals. The civil-date conversion below
// is the standard days-from-civil algorithm; it is exact for all Gregorian
// dates and avoids pulling time zones into the engine.

// DaysFromCivil converts a calendar date to days since 1970-01-01.
func DaysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// CivilFromDays converts days since 1970-01-01 back to a calendar date.
func CivilFromDays(days int64) (y, m, d int) {
	z := days + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// ParseDate parses a yyyy-mm-dd literal into days since the epoch.
func ParseDate(s string) (int64, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("types: bad date literal %q: %v", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("types: date out of range %q", s)
	}
	return DaysFromCivil(y, m, d), nil
}

// MustParseDate is ParseDate for literals known to be valid; it panics on
// malformed input and is intended for tests and generators.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders days since the epoch as yyyy-mm-dd.
func FormatDate(days int64) string {
	y, m, d := CivilFromDays(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
