package types

// Hash functions used by the hash tables and the shared-plan tagging
// machinery. Mix64 is the splitmix64 finalizer, a fast full-avalanche
// mixer for 8-byte keys; HashBytes is FNV-1a finished with Mix64 so that
// short keys still spread across the full 64-bit range (extendible hashing
// consumes the low bits of the hash for directory addressing, so poor
// low-bit diffusion would degenerate every bucket chain).

// Mix64 mixes a 64-bit value with full avalanche (splitmix64 finalizer).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashBytes hashes an arbitrary byte string to 64 bits.
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return Mix64(h)
}

// HashString hashes a string to 64 bits without copying it.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// HashCombine folds a new 64-bit component into an existing hash. It is
// used for multi-column keys: h = HashCombine(h, Mix64(col)).
func HashCombine(h, x uint64) uint64 {
	// Boost-style combine adapted to 64 bits.
	h ^= x + 0x9e3779b97f4a7c15 + (h << 12) + (h >> 4)
	return Mix64(h)
}
