// Package types defines the value model shared by all HashStash
// components: column kinds, scalar values, date arithmetic and the hash
// functions used by the extendible hash tables.
//
// All fixed-width payload encodings in the system store one column in
// exactly 8 bytes (strings are stored as 8-byte references into a string
// heap), so Kind.Width is constant; it exists to keep the tuple-width
// arithmetic of the cost model explicit at call sites.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the column types supported by the engine.
type Kind uint8

const (
	// Int64 is a signed 64-bit integer column.
	Int64 Kind = iota
	// Float64 is a double-precision floating point column.
	Float64
	// String is a variable-length string column (interned in payloads).
	String
	// Date is a calendar date stored as days since 1970-01-01.
	Date
)

// Width reports the number of bytes one value of this kind occupies in a
// fixed-width payload row.
func (k Kind) Width() int { return 8 }

// Numeric reports whether values of this kind support arithmetic.
func (k Kind) Numeric() bool { return k == Int64 || k == Float64 || k == Date }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Date:
		return "date"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a scalar value tagged with its kind. The zero Value is the
// int64 zero.
type Value struct {
	Kind Kind
	I    int64 // Int64 and Date payload
	F    float64
	S    string
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Kind: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Kind: Float64, F: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{Kind: String, S: v} }

// NewDate returns a Date value holding days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: Date, I: days} }

// AsFloat converts a numeric value to float64. Strings yield NaN.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case Float64:
		return v.F
	case Int64, Date:
		return float64(v.I)
	}
	return math.NaN()
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case Float64:
		return int64(v.F)
	case Int64, Date:
		return v.I
	}
	return 0
}

// Compare orders two values of the same kind. It returns -1, 0 or +1.
// Comparing values of different numeric kinds compares them as floats.
func (v Value) Compare(o Value) int {
	if v.Kind == String || o.Kind == String {
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
	if v.Kind == Float64 || o.Kind == Float64 {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch {
	case v.I < o.I:
		return -1
	case v.I > o.I:
		return 1
	}
	return 0
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String implements fmt.Stringer; dates render as yyyy-mm-dd.
func (v Value) String() string {
	switch v.Kind {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case String:
		return v.S
	case Date:
		return FormatDate(v.I)
	}
	return "?"
}

// Bits returns the 8-byte payload encoding of the value. Strings must be
// interned by the caller; Bits panics on String values to catch misuse.
func (v Value) Bits() uint64 {
	switch v.Kind {
	case Int64, Date:
		return uint64(v.I)
	case Float64:
		return math.Float64bits(v.F)
	}
	panic("types: Bits called on string value; intern it first")
}

// FromBits decodes an 8-byte payload encoding produced by Bits.
func FromBits(k Kind, bits uint64) Value {
	switch k {
	case Int64:
		return Value{Kind: Int64, I: int64(bits)}
	case Date:
		return Value{Kind: Date, I: int64(bits)}
	case Float64:
		return Value{Kind: Float64, F: math.Float64frombits(bits)}
	}
	panic("types: FromBits on string kind")
}
