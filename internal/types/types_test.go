package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Int64: "int64", Float64: "float64", String: "string", Date: "date"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKindWidth(t *testing.T) {
	for _, k := range []Kind{Int64, Float64, String, Date} {
		if k.Width() != 8 {
			t.Errorf("%v.Width() = %d, want 8", k, k.Width())
		}
	}
}

func TestValueConstructorsAndConversions(t *testing.T) {
	if v := NewInt(-7); v.Kind != Int64 || v.AsInt() != -7 || v.AsFloat() != -7 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != Float64 || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("x"); v.Kind != String || v.S != "x" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewDate(100); v.Kind != Date || v.AsInt() != 100 {
		t.Errorf("NewDate: %+v", v)
	}
	if !math.IsNaN(NewString("x").AsFloat()) {
		t.Error("string AsFloat should be NaN")
	}
	if NewString("x").AsInt() != 0 {
		t.Error("string AsInt should be 0")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewString("c"), NewString("b"), 1},
		{NewDate(10), NewDate(20), -1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if eq := tc.a.Equal(tc.b); eq != (tc.want == 0) {
			t.Errorf("Equal(%v, %v) = %v", tc.a, tc.b, eq)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{NewDate(MustParseDate("1995-03-15")), "1995-03-15"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	vals := []Value{NewInt(-5), NewInt(1 << 40), NewFloat(-2.25), NewDate(9000)}
	for _, v := range vals {
		got := FromBits(v.Kind, v.Bits())
		if !got.Equal(v) || got.Kind != v.Kind {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestBitsPanicsOnString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bits on string did not panic")
		}
	}()
	_ = NewString("x").Bits()
}

func TestFromBitsPanicsOnString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromBits on string kind did not panic")
		}
	}()
	_ = FromBits(String, 0)
}

func TestDateRoundTripKnown(t *testing.T) {
	tests := []struct {
		s    string
		days int64
	}{
		{"1970-01-01", 0},
		{"1970-01-02", 1},
		{"1969-12-31", -1},
		{"2000-03-01", 11017},
		{"1992-01-01", 8035},
		{"1998-08-02", 10440},
	}
	for _, tc := range tests {
		got, err := ParseDate(tc.s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", tc.s, err)
		}
		if got != tc.days {
			t.Errorf("ParseDate(%q) = %d, want %d", tc.s, got, tc.days)
		}
		if back := FormatDate(tc.days); back != tc.s {
			t.Errorf("FormatDate(%d) = %q, want %q", tc.days, back, tc.s)
		}
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"not-a-date", "1995-13-01", "1995-00-10", "1995-01-40", ""} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) succeeded, want error", s)
		}
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate on junk did not panic")
		}
	}()
	MustParseDate("junk")
}

// Property: civil -> days -> civil is the identity over a wide range.
func TestDateRoundTripProperty(t *testing.T) {
	f := func(off int32) bool {
		days := int64(off) % 200000 // ~±547 years around the epoch
		y, m, d := CivilFromDays(days)
		return DaysFromCivil(y, m, d) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: consecutive days differ by exactly one calendar day.
func TestDateMonotonic(t *testing.T) {
	prevY, prevM, prevD := CivilFromDays(7999)
	for days := int64(8000); days < 8000+3000; days++ {
		y, m, d := CivilFromDays(days)
		if y < prevY || (y == prevY && m < prevM) || (y == prevY && m == prevM && d <= prevD) {
			t.Fatalf("date not increasing at %d: %04d-%02d-%02d after %04d-%02d-%02d",
				days, y, m, d, prevY, prevM, prevD)
		}
		prevY, prevM, prevD = y, m, d
	}
}

func TestHashBytesMatchesHashString(t *testing.T) {
	inputs := []string{"", "a", "hello world", "lineitem|shipdate"}
	for _, s := range inputs {
		if HashBytes([]byte(s)) != HashString(s) {
			t.Errorf("HashBytes/HashString disagree on %q", s)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial number of output
	// bits on average — a weak but effective avalanche sanity check.
	total := 0
	const trials = 64
	for bit := 0; bit < trials; bit++ {
		a := Mix64(0x12345678)
		b := Mix64(0x12345678 ^ (1 << uint(bit)))
		diff := a ^ b
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		total += n
	}
	avg := float64(total) / trials
	if avg < 20 || avg > 44 {
		t.Errorf("avalanche average %f out of plausible range", avg)
	}
}

func TestHashCombineOrderSensitive(t *testing.T) {
	a := HashCombine(Mix64(1), Mix64(2))
	b := HashCombine(Mix64(2), Mix64(1))
	if a == b {
		t.Error("HashCombine should be order sensitive")
	}
}

// Property: equal byte strings hash equal; a one-byte change changes the
// hash (no formal guarantee, but a collision here would be a red flag in
// a 64-bit space for short deterministic inputs).
func TestHashBytesProperty(t *testing.T) {
	f := func(b []byte) bool {
		h1 := HashBytes(b)
		h2 := HashBytes(append([]byte(nil), b...))
		if h1 != h2 {
			return false
		}
		mutated := append([]byte(nil), b...)
		mutated = append(mutated, 0x5a)
		return HashBytes(mutated) != h1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
