package workload

import (
	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Exp2Trace reproduces the seven-query sequence of the paper's
// Experiment 2a (Figure 8a / Table 8b): a 5-way SPJA seed query over
// LINEITEM, ORDERS, PART, CUSTOMER and SUPPLIER followed by six user
// interactions. The first four follow-ups modify the o_orderdate
// selection predicate exactly as Table 8b lists; the last two modify
// the group-by keys (drill-down adds p_brand, roll-up removes p_mfgr).
func Exp2Trace() []Step {
	mk := func(kind Interaction, lo, hi string, groupBy []storage.ColRef) Step {
		loD, hiD := types.MustParseDate(lo), types.MustParseDate(hi)
		q := &plan.Query{
			Relations: []plan.Rel{
				{Alias: "c", Table: "customer"},
				{Alias: "o", Table: "orders"},
				{Alias: "l", Table: "lineitem"},
				{Alias: "p", Table: "part"},
				{Alias: "s", Table: "supplier"},
			},
			Joins: []plan.JoinPred{
				{Left: colRef("c", "c_custkey"), Right: colRef("o", "o_custkey")},
				{Left: colRef("o", "o_orderkey"), Right: colRef("l", "l_orderkey")},
				{Left: colRef("l", "l_partkey"), Right: colRef("p", "p_partkey")},
				{Left: colRef("l", "l_suppkey"), Right: colRef("s", "s_suppkey")},
			},
			Filter: expr.NewBox(expr.Pred{
				Col: colRef("o", "o_orderdate"),
				Con: expr.IntervalConstraint(types.Date, expr.Interval{
					HasLo: true, Lo: types.NewDate(loD), LoIncl: true,
					HasHi: true, Hi: types.NewDate(hiD), HiIncl: false,
				}),
			}),
			Select:  append([]storage.ColRef{}, groupBy...),
			GroupBy: append([]storage.ColRef{}, groupBy...),
			Aggs: []expr.AggSpec{
				{Func: expr.AggSum, Arg: &expr.Col{Ref: colRef("l", "l_extendedprice")}, Alias: "revenue"},
			},
		}
		return Step{Query: q, Kind: kind, Lo: loD, Hi: hiD}
	}

	gbMfgr := []storage.ColRef{colRef("p", "p_mfgr")}
	gbMfgrBrand := []storage.ColRef{colRef("p", "p_mfgr"), colRef("p", "p_brand")}
	gbBrand := []storage.ColRef{colRef("p", "p_brand")}

	return []Step{
		// Seed: o_orderdate in [1996-01-01, 1998-01-01).
		mk(Seed, "1996-01-01", "1998-01-01", gbMfgr),
		// Zoom In: 1996-06-01 .. 1996-09-01.
		mk(ZoomIn, "1996-06-01", "1996-09-01", gbMfgr),
		// Zoom Out: 1992-01-01 .. 1998-01-01.
		mk(ZoomOut, "1992-01-01", "1998-01-01", gbMfgr),
		// Shift Much: 1996-09-01 .. 1998-01-01.
		mk(ShiftMuch, "1996-09-01", "1998-01-01", gbMfgr),
		// Shift Less: 1994-01-01 .. 1998-01-01.
		mk(ShiftLess, "1994-01-01", "1998-01-01", gbMfgr),
		// Drill Down: add p_brand to the group-by.
		mk(DrillDown, "1994-01-01", "1998-01-01", gbMfgrBrand),
		// Roll Up: remove p_mfgr.
		mk(RollUp, "1994-01-01", "1998-01-01", gbBrand),
	}
}

func colRef(a, c string) storage.ColRef { return storage.ColRef{Table: a, Column: c} }
