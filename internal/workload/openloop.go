// Package workload generates open-loop serving workloads: timestamped
// query arrivals (Poisson inter-arrival times) over a small family of
// TPC-H statement shapes, for driving the serving front-end in tests
// and benchmarks. Open-loop means arrival times are fixed up front —
// clients do not wait for responses before sending — so queueing and
// batching behavior under a target rate is measured, not hidden.
package workload

import (
	"fmt"
	"math"
	"time"
)

// Arrival is one scheduled query.
type Arrival struct {
	// At is the offset from workload start.
	At time.Duration
	// SQL is the statement text.
	SQL string
	// Tenant issues the query.
	Tenant string
	// Shape indexes the statement template the SQL came from (arrivals
	// with equal Shape are batchable together).
	Shape int
}

// Mix selects the statement-shape composition.
type Mix int

const (
	// MixIdentical replays one statement text verbatim.
	MixIdentical Mix = iota
	// MixSimilar draws from one join spine with shifted predicate
	// windows (the shared-plan sweet spot: same shape, different
	// selections).
	MixSimilar
	// MixDistinct interleaves unrelated shapes (little to share).
	MixDistinct
)

// q3Like renders the paper's running example — the customer ⋈ orders ⋈
// lineitem aggregation — with a shifted shipdate window.
func q3Like(week int) string {
	day := 1 + (week*7)%28
	return fmt.Sprintf(
		"SELECT c.c_age, SUM(l.l_extendedprice) AS revenue "+
			"FROM customer c, orders o, lineitem l "+
			"WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "+
			"AND l.l_shipdate >= DATE '1995-%02d-%02d' GROUP BY c.c_age",
		1+week%12, day)
}

// distinctShapes are unrelated statements (different tables / join
// spines), for the nothing-to-share mix.
var distinctShapes = []string{
	"SELECT o.o_shippriority, SUM(o.o_totalprice) AS total FROM orders o GROUP BY o.o_shippriority",
	"SELECT l.l_returnflag, SUM(l.l_quantity) AS qty FROM lineitem l GROUP BY l.l_returnflag",
	"SELECT c.c_mktsegment, SUM(c.c_acctbal) AS bal FROM customer c GROUP BY c.c_mktsegment",
	"SELECT c.c_age, SUM(o.o_totalprice) AS spend FROM customer c, orders o WHERE c.c_custkey = o.o_custkey GROUP BY c.c_age",
}

// uniform maps one rng draw to (0,1].
func uniform(r *rng) float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// GenerateOpenLoop schedules n arrivals at mean rate queries/sec
// (Poisson process) over the given mix, round-robining across tenants.
// The same seed reproduces the same workload.
func GenerateOpenLoop(n int, rate float64, mix Mix, tenants []string, seed uint64) []Arrival {
	if n <= 0 {
		return nil
	}
	if rate <= 0 {
		rate = 100
	}
	if len(tenants) == 0 {
		tenants = []string{""}
	}
	if seed == 0 {
		seed = 0x4f50454e // "OPEN"
	}
	r := &rng{state: seed}
	arrivals := make([]Arrival, n)
	var at time.Duration
	for i := range arrivals {
		// Exponential inter-arrival gap with mean 1/rate.
		gap := -math.Log(uniform(r)) / rate
		at += time.Duration(gap * float64(time.Second))
		var sql string
		var shape int
		switch mix {
		case MixIdentical:
			sql, shape = q3Like(0), 0
		case MixSimilar:
			shape = 0
			sql = q3Like(int(r.intn(16)))
		default:
			shape = int(r.intn(int64(len(distinctShapes))))
			sql = distinctShapes[shape]
		}
		arrivals[i] = Arrival{
			At:     at,
			SQL:    sql,
			Tenant: tenants[i%len(tenants)],
			Shape:  shape,
		}
	}
	return arrivals
}
