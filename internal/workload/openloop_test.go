package workload

import "testing"

func TestGenerateOpenLoopDeterministic(t *testing.T) {
	a := GenerateOpenLoop(50, 500, MixSimilar, []string{"x", "y"}, 42)
	b := GenerateOpenLoop(50, 500, MixSimilar, []string{"x", "y"}, 42)
	if len(a) != 50 {
		t.Fatalf("got %d arrivals", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across equal seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateOpenLoopProperties(t *testing.T) {
	arrivals := GenerateOpenLoop(200, 1000, MixDistinct, []string{"a", "b", "c"}, 7)
	last := arrivals[0].At
	shapes := map[int]int{}
	tenants := map[string]int{}
	for _, a := range arrivals[1:] {
		if a.At < last {
			t.Fatal("arrival times not monotone")
		}
		last = a.At
		shapes[a.Shape]++
		tenants[a.Tenant]++
		if a.SQL == "" {
			t.Fatal("empty SQL")
		}
	}
	if len(shapes) < 2 {
		t.Fatalf("distinct mix produced %d shapes", len(shapes))
	}
	if len(tenants) != 3 {
		t.Fatalf("tenant round-robin covered %d tenants", len(tenants))
	}
	// Mean inter-arrival of a 1000/s Poisson stream over 200 samples
	// lands well inside [0.1ms, 10ms].
	mean := last / 199
	if mean <= 0 || mean > 10_000_000 {
		t.Fatalf("implausible mean inter-arrival %v", mean)
	}

	identical := GenerateOpenLoop(10, 100, MixIdentical, nil, 1)
	for _, a := range identical[1:] {
		if a.SQL != identical[0].SQL || a.Shape != 0 {
			t.Fatal("identical mix produced differing statements")
		}
	}
}
