package workload

import (
	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// Partitioned workloads: GeneratePartitioned models the operational
// side of a sharded deployment — a stream dominated by partition-key
// point lookups ("show customer K and their orders"), which a sharded
// engine routes to exactly one shard, mixed with a configurable
// fraction of cross-shard analytics (date-window scans over the same
// join) that must scatter to every shard. The CrossShardFrac knob
// sweeps between the two regimes, which is what the sharded-routing
// experiments and the scatter-gather benchmarks vary.

// PartitionedConfig controls partitioned workload generation. The
// queries run over CUSTOMER ⋈ ORDERS on custkey — co-partitioned when
// both tables are hash-partitioned by their customer key.
type PartitionedConfig struct {
	// N is the number of queries (default 64).
	N int
	// CrossShardFrac is the fraction of queries that constrain no
	// partition key and therefore scatter (default 0.25).
	CrossShardFrac float64
	// CustKeys is the customer-key domain [1, CustKeys] point lookups
	// draw from (default 1500, the tpch SF=0.01 customer count).
	CustKeys int64
	// Seed makes generation deterministic; 0 selects a default.
	Seed uint64
}

func (cfg *PartitionedConfig) defaults() {
	if cfg.N <= 0 {
		cfg.N = 64
	}
	if cfg.CrossShardFrac < 0 || cfg.CrossShardFrac > 1 {
		cfg.CrossShardFrac = 0.25
	}
	if cfg.CustKeys <= 0 {
		cfg.CustKeys = 1500
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x53484152 // "SHAR"
	}
}

// GeneratePartitioned produces a workload of cfg.N queries. Point
// queries (Shape = 0) carry a c_custkey equality, pinning every
// partitioned relation of the co-partitioned join to one shard;
// cross-shard queries (Shape = 1) filter on the o_orderdate window
// instead and aggregate across the whole key domain. Step.Lo/Hi carry
// the point key or the date window respectively.
func GeneratePartitioned(cfg PartitionedConfig) []Step {
	cfg.defaults()
	r := &rng{state: cfg.Seed}
	dlo, dhi := orderShipRange()
	span := dhi - dlo

	steps := make([]Step, 0, cfg.N)
	for len(steps) < cfg.N {
		if r.float() < cfg.CrossShardFrac {
			lo := dlo + r.intn(span-span/8)
			hi := lo + span/8
			steps = append(steps, Step{
				Query: crossShardQuery(lo, hi),
				Kind:  ShiftMuch,
				Lo:    lo, Hi: hi,
				Shape: 1,
			})
			continue
		}
		key := 1 + r.intn(cfg.CustKeys)
		steps = append(steps, Step{
			Query: pointQuery(key),
			Kind:  ZoomIn,
			Lo:    key, Hi: key,
			Shape: 0,
		})
	}
	return steps
}

// pointQuery pins the co-partitioned CUSTOMER ⋈ ORDERS join to one
// customer key: the c_custkey equality routes to a single shard, and
// the o_custkey side inherits the pin through the join edge.
func pointQuery(key int64) *plan.Query {
	return &plan.Query{
		Relations: []plan.Rel{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
		Joins: []plan.JoinPred{{
			Left:  storage.ColRef{Table: "c", Column: "c_custkey"},
			Right: storage.ColRef{Table: "o", Column: "o_custkey"},
		}},
		Filter: expr.NewBox(expr.Pred{
			Col: storage.ColRef{Table: "c", Column: "c_custkey"},
			Con: expr.IntervalConstraint(types.Int64, expr.PointInterval(types.NewInt(key))),
		}),
		Select:  []storage.ColRef{{Table: "c", Column: "c_age"}},
		GroupBy: []storage.ColRef{{Table: "c", Column: "c_age"}},
		Aggs: []expr.AggSpec{{
			Func:  expr.AggSum,
			Arg:   &expr.Col{Ref: storage.ColRef{Table: "o", Column: "o_totalprice"}},
			Alias: "spend",
		}},
	}
}

// crossShardQuery constrains only a date window, so its matching rows
// span every shard and the query scatters.
func crossShardQuery(lo, hi int64) *plan.Query {
	return &plan.Query{
		Relations: []plan.Rel{{Alias: "c", Table: "customer"}, {Alias: "o", Table: "orders"}},
		Joins: []plan.JoinPred{{
			Left:  storage.ColRef{Table: "c", Column: "c_custkey"},
			Right: storage.ColRef{Table: "o", Column: "o_custkey"},
		}},
		Filter: expr.NewBox(expr.Pred{
			Col: storage.ColRef{Table: "o", Column: "o_orderdate"},
			Con: expr.IntervalConstraint(types.Date, expr.Interval{
				HasLo: true, Lo: types.NewDate(lo), LoIncl: true,
				HasHi: true, Hi: types.NewDate(hi),
			}),
		}),
		Select:  []storage.ColRef{{Table: "c", Column: "c_mktsegment"}},
		GroupBy: []storage.ColRef{{Table: "c", Column: "c_mktsegment"}},
		Aggs: []expr.AggSpec{{
			Func:  expr.AggSum,
			Arg:   &expr.Col{Ref: storage.ColRef{Table: "o", Column: "o_totalprice"}},
			Alias: "revenue",
		}},
	}
}
