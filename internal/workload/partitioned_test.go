package workload

import (
	"testing"

	"hashstash/internal/expr"
	"hashstash/internal/storage"
)

func TestGeneratePartitionedMix(t *testing.T) {
	steps := GeneratePartitioned(PartitionedConfig{N: 400, CrossShardFrac: 0.25})
	if len(steps) != 400 {
		t.Fatalf("got %d steps", len(steps))
	}
	cross := 0
	for _, s := range steps {
		switch s.Shape {
		case 1:
			cross++
			if _, ok := s.Query.Filter.Constraint(storage.ColRef{Table: "c", Column: "c_custkey"}); ok {
				t.Fatal("cross-shard step constrains the partition key")
			}
		case 0:
			con, ok := s.Query.Filter.Constraint(storage.ColRef{Table: "c", Column: "c_custkey"})
			if !ok {
				t.Fatal("point step lacks the partition-key constraint")
			}
			iv := con.Iv
			if !iv.HasLo || !iv.HasHi || iv.Lo.Compare(iv.Hi) != 0 {
				t.Fatalf("point step constraint %v is not a point", con)
			}
			if iv.Lo.I != s.Lo {
				t.Fatalf("Step.Lo = %d, constraint key = %d", s.Lo, iv.Lo.I)
			}
		default:
			t.Fatalf("unexpected shape %d", s.Shape)
		}
		if len(s.Query.Aggs) != 1 || s.Query.Aggs[0].Func != expr.AggSum {
			t.Fatalf("unexpected aggregate list %v", s.Query.Aggs)
		}
	}
	if frac := float64(cross) / 400; frac < 0.15 || frac > 0.35 {
		t.Fatalf("cross-shard fraction %.2f, want ~0.25", frac)
	}

	// Deterministic for a fixed seed.
	again := GeneratePartitioned(PartitionedConfig{N: 400, CrossShardFrac: 0.25})
	for i := range steps {
		if steps[i].Shape != again[i].Shape || steps[i].Lo != again[i].Lo || steps[i].Hi != again[i].Hi {
			t.Fatalf("step %d not deterministic", i)
		}
	}
}

func TestGeneratePartitionedAllCross(t *testing.T) {
	steps := GeneratePartitioned(PartitionedConfig{N: 16, CrossShardFrac: 1})
	for i, s := range steps {
		if s.Shape != 1 {
			t.Fatalf("step %d: shape %d under CrossShardFrac=1", i, s.Shape)
		}
	}
}
