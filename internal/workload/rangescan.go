package workload

import (
	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/tpch"
	"hashstash/internal/types"
)

// Range-heavy workload: single-relation selections with narrow, drifting
// l_shipdate windows — the access pattern the ordered secondary-index
// path serves. Unlike the join workloads above, there is no hash table
// to recycle here; what repeats across queries is the *column* being
// constrained, which is exactly the signal the ski-rental lazy-build
// heuristic accumulates before investing in an index.

// RangeConfig controls range-workload generation.
type RangeConfig struct {
	// N is the number of queries (default 32).
	N int
	// Selectivity is the fraction of the shipdate domain each window
	// covers (default 0.01).
	Selectivity float64
	// TopK, when > 0, makes every fourth query an ORDER BY
	// l_extendedprice DESC LIMIT TopK top-k query over the window.
	TopK int
	// Seed makes generation deterministic; 0 selects a default.
	Seed uint64
}

// GenerateRange produces a range-heavy (optionally top-k-mixed)
// workload over lineitem.
func GenerateRange(cfg RangeConfig) []Step {
	if cfg.N <= 0 {
		cfg.N = 32
	}
	if cfg.Selectivity <= 0 {
		cfg.Selectivity = 0.01
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x52414e47 // "RANG"
	}
	r := &rng{state: seed}

	dlo, dhi := tpch.OrderDateRange()
	shipLo, shipHi := dlo+1, dhi+121
	span := shipHi - shipLo
	width := int64(float64(span) * cfg.Selectivity)
	if width < 1 {
		width = 1
	}

	steps := make([]Step, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		lo := shipLo + r.intn(span-width+1)
		hi := lo + width
		q := rangeQuery(lo, hi)
		if cfg.TopK > 0 && i%4 == 3 {
			q.OrderBy = &plan.OrderSpec{Col: ref("l", "l_extendedprice"), Desc: true}
			q.Limit = cfg.TopK
		}
		steps = append(steps, Step{Query: q, Kind: ShiftMuch, Lo: lo, Hi: hi})
	}
	return steps
}

// rangeQuery builds one single-relation selection over lineitem.
func rangeQuery(lo, hi int64) *plan.Query {
	return &plan.Query{
		Relations: []plan.Rel{{Alias: "l", Table: "lineitem"}},
		Filter: expr.NewBox(expr.Pred{
			Col: ref("l", "l_shipdate"),
			Con: expr.IntervalConstraint(types.Date, expr.Interval{
				HasLo: true, Lo: types.NewDate(lo), LoIncl: true,
				HasHi: true, Hi: types.NewDate(hi), HiIncl: false,
			}),
		}),
		Select: []storage.ColRef{
			ref("l", "l_orderkey"),
			ref("l", "l_extendedprice"),
		},
	}
}
