package workload

import (
	"math"

	"hashstash/internal/storage"
	"hashstash/internal/tpch"
)

// Skewed workloads: instead of a session of correlated interactions,
// GenerateSkewed models a dashboard-style population of recurring
// queries — a fixed set of query shapes drawn with Zipfian frequency —
// polluted by a stream of one-shot queries that never repeat. Hot
// shapes repay their cached hash tables many times over while one-shot
// artifacts never do, which is exactly the regime where
// benefit-per-byte eviction separates from LRU: every one-shot is the
// most-recently-used entry the moment it registers.

// SkewConfig controls skewed workload generation.
type SkewConfig struct {
	// N is the number of queries (default 256).
	N int
	// Shapes is the number of distinct recurring query shapes
	// (default 16). Shape r is drawn proportionally to 1/(r+1)^S.
	Shapes int
	// S is the Zipf exponent (default 1.1; larger = more skew).
	S float64
	// OneShotFrac is the fraction of queries that are one-shot
	// pollution — unique filters, never repeated (default 0.25).
	OneShotFrac float64
	// Seed makes generation deterministic; 0 selects a default.
	Seed uint64
}

func (cfg *SkewConfig) defaults() {
	if cfg.N <= 0 {
		cfg.N = 256
	}
	if cfg.Shapes <= 0 {
		cfg.Shapes = 16
	}
	if cfg.S <= 0 {
		cfg.S = 1.1
	}
	if cfg.OneShotFrac < 0 || cfg.OneShotFrac >= 1 {
		cfg.OneShotFrac = 0.25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x534b4557 // "SKEW"
	}
}

// ZipfWeights returns the normalized draw probabilities of n ranks
// under exponent s (rank 0 hottest). Exported for tests and benchmark
// reporting.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for r := range w {
		w[r] = 1 / math.Pow(float64(r+1), s)
		sum += w[r]
	}
	for r := range w {
		w[r] /= sum
	}
	return w
}

// GenerateSkewed produces a workload of cfg.N queries: recurring shapes
// drawn by Zipf rank (Step.Shape = rank), interleaved with one-shot
// queries (Step.Shape = -1). Steps sharing a Shape are byte-identical
// queries, so the second occurrence of a shape is an exact-reuse hit.
func GenerateSkewed(cfg SkewConfig) []Step {
	cfg.defaults()
	r := &rng{state: cfg.Seed}

	dlo, dhi := orderShipRange()
	span := dhi - dlo

	// Fix the recurring shapes up front. Widths vary by rank so hot and
	// cold shapes alike come in different sizes (the benefit-per-byte
	// score has to weigh them, not just count hits), and every fourth
	// shape drills into PART for join-graph diversity.
	shapes := make([]*state, cfg.Shapes)
	for i := range shapes {
		st := &state{
			baseLo:  dlo,
			baseHi:  dhi,
			groupBy: []storage.ColRef{ref("c", "c_age")},
		}
		width := span/32 + r.intn(span/8)
		st.lo = dlo + r.intn(span-width)
		st.hi = st.lo + width
		st.ageLo = 18 + r.intn(50)
		st.ageHi = st.ageLo + 10 + r.intn(20)
		if i%4 == 3 {
			st.hasPart = true
			st.groupBy = append(st.groupBy, ref("p", "p_mfgr"))
		}
		shapes[i] = st
	}

	// Inverse-CDF table over the Zipf weights.
	cum := ZipfWeights(cfg.Shapes, cfg.S)
	for i := 1; i < len(cum); i++ {
		cum[i] += cum[i-1]
	}

	steps := make([]Step, 0, cfg.N)
	for len(steps) < cfg.N {
		if r.float() < cfg.OneShotFrac {
			// One-shot pollution: a unique narrow window that will never
			// be asked again — its cached artifacts can only cost memory.
			st := &state{
				baseLo:  dlo,
				baseHi:  dhi,
				groupBy: []storage.ColRef{ref("c", "c_age")},
			}
			width := span/64 + r.intn(span/16)
			st.lo = dlo + r.intn(span-width)
			st.hi = st.lo + width
			st.ageLo = 18 + r.intn(60)
			st.ageHi = st.ageLo + 1 + r.intn(8)
			steps = append(steps, Step{Query: st.query(), Kind: ShiftMuch, Lo: st.lo, Hi: st.hi, Shape: -1})
			continue
		}
		p := r.float()
		rank := 0
		for rank < len(cum)-1 && p >= cum[rank] {
			rank++
		}
		st := shapes[rank]
		steps = append(steps, Step{Query: st.query(), Kind: Seed, Lo: st.lo, Hi: st.hi, Shape: rank})
	}
	return steps
}

// orderShipRange returns the l_shipdate domain the generators draw
// windows from.
func orderShipRange() (int64, int64) {
	dlo, dhi := tpch.OrderDateRange()
	return dlo + 1, dhi + 121
}
