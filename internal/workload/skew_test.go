package workload

import "testing"

func TestGenerateSkewedDeterministic(t *testing.T) {
	cfg := SkewConfig{N: 128, Shapes: 8, Seed: 7}
	a := GenerateSkewed(cfg)
	b := GenerateSkewed(cfg)
	if len(a) != len(b) || len(a) != 128 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Shape != b[i].Shape || a[i].SQL() != b[i].SQL() {
			t.Fatalf("step %d differs between identical configs", i)
		}
	}
}

func TestGenerateSkewedShapesRepeatExactly(t *testing.T) {
	steps := GenerateSkewed(SkewConfig{N: 200, Shapes: 6, Seed: 3})
	bySQL := map[int]string{}
	for i, s := range steps {
		if s.Shape < 0 {
			continue
		}
		if s.Shape >= 6 {
			t.Fatalf("step %d: shape %d out of range", i, s.Shape)
		}
		sql := s.SQL()
		if prev, ok := bySQL[s.Shape]; ok && prev != sql {
			t.Fatalf("shape %d rendered two different queries", s.Shape)
		}
		bySQL[s.Shape] = sql
	}
	if len(bySQL) < 3 {
		t.Fatalf("only %d distinct shapes drawn from 6", len(bySQL))
	}
}

// TestGenerateSkewedDistribution checks the draw frequencies follow the
// configured Zipf weights: monotone-ish by rank, head far above tail,
// and close to the analytic distribution in aggregate.
func TestGenerateSkewedDistribution(t *testing.T) {
	const n, shapes = 4000, 10
	cfg := SkewConfig{N: n, Shapes: shapes, S: 1.2, OneShotFrac: 0.25, Seed: 11}
	steps := GenerateSkewed(cfg)

	counts := make([]int, shapes)
	oneShots := 0
	for _, s := range steps {
		if s.Shape < 0 {
			oneShots++
			continue
		}
		counts[s.Shape]++
	}

	frac := float64(oneShots) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("one-shot fraction %.3f far from configured 0.25", frac)
	}

	recurring := n - oneShots
	if counts[0] <= counts[shapes-1]*2 {
		t.Fatalf("head rank not dominant: counts[0]=%d counts[%d]=%d", counts[0], shapes-1, counts[shapes-1])
	}
	w := ZipfWeights(shapes, cfg.S)
	totalDev := 0.0
	for r := range counts {
		emp := float64(counts[r]) / float64(recurring)
		if d := emp - w[r]; d < 0 {
			totalDev -= d
		} else {
			totalDev += d
		}
	}
	if totalDev > 0.15 {
		t.Fatalf("empirical distribution deviates %.3f (L1) from Zipf weights", totalDev)
	}
	// The head half must account for more than its uniform share.
	head := 0
	for r := 0; r < shapes/2; r++ {
		head += counts[r]
	}
	if float64(head)/float64(recurring) < 0.75 {
		t.Fatalf("head half drew only %.2f of recurring queries; want Zipf-heavy head", float64(head)/float64(recurring))
	}
}
