// Package workload generates the analytical query workloads of the
// paper's evaluation (Section 6): sequences of 64 SPJ/SPJA queries over
// the TPC-H schema derived from a seed query (TPC-H Q3's 3-way join
// with aggregation) by simulated user interactions — zoom-in, zoom-out,
// shift, drill-down (adding PART/SUPPLIER joins and group-by columns)
// and roll-up. The reuse level controls the average overlap of the data
// read by consecutive queries: 1% (low), 10% (medium), 50% (high).
package workload

import (
	"fmt"

	"hashstash/internal/expr"
	"hashstash/internal/plan"
	"hashstash/internal/storage"
	"hashstash/internal/tpch"
	"hashstash/internal/types"
)

// Level is the reuse potential of a workload.
type Level uint8

// Reuse levels with their consecutive-query overlap targets.
const (
	Low    Level = iota // ~1% overlap: users jump across the data
	Medium              // ~10% overlap
	High                // ~50% overlap: focused exploration
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return "level(?)"
}

// Overlap returns the target overlap fraction between the date windows
// of consecutive queries.
func (l Level) Overlap() float64 {
	switch l {
	case Low:
		return 0.01
	case Medium:
		return 0.10
	default:
		return 0.50
	}
}

// Interaction labels the user action deriving one query from its
// predecessor.
type Interaction uint8

// The interactions of Section 6.1.
const (
	Seed Interaction = iota
	ZoomIn
	ZoomOut
	ShiftMuch
	ShiftLess
	DrillDown
	RollUp
)

// String implements fmt.Stringer.
func (i Interaction) String() string {
	switch i {
	case Seed:
		return "seed"
	case ZoomIn:
		return "zoom-in"
	case ZoomOut:
		return "zoom-out"
	case ShiftMuch:
		return "shift-much"
	case ShiftLess:
		return "shift-less"
	case DrillDown:
		return "drill-down"
	case RollUp:
		return "roll-up"
	}
	return "interaction(?)"
}

// Step is one query of a workload.
type Step struct {
	Query *plan.Query
	Kind  Interaction
	// Window is the l_shipdate predicate window [Lo, Hi).
	Lo, Hi int64
	// Shape identifies the recurring query shape a skewed workload drew
	// (see GenerateSkewed); -1 for one-shot queries and for every step of
	// the classic interaction-driven Generate.
	Shape int
}

// Config controls workload generation.
type Config struct {
	Level Level
	// N is the number of queries (the paper uses 64).
	N int
	// Seed makes generation deterministic; 0 selects a default.
	Seed uint64
}

// rng is the same splitmix stream the TPC-H generator uses.
type rng struct{ state uint64 }

func (r *rng) next() uint64 { r.state += 0x9e3779b97f4a7c15; return types.Mix64(r.state) }
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

func ref(a, c string) storage.ColRef { return storage.ColRef{Table: a, Column: c} }

// state tracks the evolving query shape during generation. Sessions
// move through TWO correlated filter dimensions — the l_shipdate window
// and a c_age window — so that at low overlap nothing (not even the
// customer-side hash tables) is trivially reusable, matching the
// paper's "users look at different parts of the data set".
type state struct {
	lo, hi   int64
	ageLo    int64
	ageHi    int64
	hasPart  bool
	hasSupp  bool
	groupBy  []storage.ColRef
	baseLo   int64
	baseHi   int64
	minWidth int64
	maxWidth int64
}

// Generate produces a workload of cfg.N queries.
func Generate(cfg Config) []Step {
	if cfg.N <= 0 {
		cfg.N = 64
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x574b4c44 // "WKLD"
	}
	r := &rng{state: seed ^ uint64(cfg.Level)<<32}

	dlo, dhi := tpch.OrderDateRange()
	// Shipdates extend up to 121 days past the last order date.
	shipLo, shipHi := dlo+1, dhi+121
	span := shipHi - shipLo

	st := &state{
		baseLo:   shipLo,
		baseHi:   shipHi,
		minWidth: span / 40,
		maxWidth: span / 4,
		groupBy:  []storage.ColRef{ref("c", "c_age")},
	}
	st.lo = shipLo + r.intn(span/2)
	st.hi = st.lo + st.minWidth*4
	st.ageLo = 18 + r.intn(40)
	st.ageHi = st.ageLo + 20

	steps := make([]Step, 0, cfg.N)
	steps = append(steps, Step{Query: st.query(), Kind: Seed, Lo: st.lo, Hi: st.hi, Shape: -1})
	for len(steps) < cfg.N {
		kind := pickInteraction(r, st, cfg.Level)
		st.apply(r, kind, cfg.Level.Overlap())
		steps = append(steps, Step{Query: st.query(), Kind: kind, Lo: st.lo, Hi: st.hi, Shape: -1})
	}
	return steps
}

// pickInteraction draws the next user action. The mix depends on the
// reuse level, matching the paper's characterization: low-reuse users
// jump across the data set (shift-much re-randomizes every filter
// dimension), while medium/high-reuse users explore a common region
// with nested zooms and small shifts before changing focus.
func pickInteraction(r *rng, st *state, level Level) Interaction {
	var jumpP, zoomInP, zoomOutP, shiftLessP, drillP float64
	switch level {
	case Low:
		jumpP, zoomInP, zoomOutP, shiftLessP, drillP = 0.80, 0.03, 0.03, 0.06, 0.06
	case Medium:
		jumpP, zoomInP, zoomOutP, shiftLessP, drillP = 0.42, 0.14, 0.14, 0.20, 0.07
	default: // High
		jumpP, zoomInP, zoomOutP, shiftLessP, drillP = 0.10, 0.28, 0.28, 0.22, 0.08
	}
	p := r.float()
	switch {
	case p < jumpP:
		return ShiftMuch
	case p < jumpP+zoomInP:
		return ZoomIn
	case p < jumpP+zoomInP+zoomOutP:
		return ZoomOut
	case p < jumpP+zoomInP+zoomOutP+shiftLessP:
		return ShiftLess
	case p < jumpP+zoomInP+zoomOutP+shiftLessP+drillP:
		if st.hasPart && st.hasSupp {
			return RollUp
		}
		return DrillDown
	default:
		if len(st.groupBy) > 1 || st.hasPart || st.hasSupp {
			return RollUp
		}
		return ZoomOut
	}
}

// apply mutates the state.
//
//   - ZoomIn narrows the c_age window (nested): the cached aggregate
//     subsumes the request and c_age is a group-by column, so the
//     rewrite post-filters cached groups.
//   - ZoomOut widens the date window (nested superset): partial reuse
//     folds only the missing date range into the cached aggregate.
//   - ShiftLess moves the date window keeping the level's target
//     overlap (overlapping-reuse territory for join tables).
//   - ShiftMuch is a focus jump: the date window keeps only ~target/4
//     overlap and the age window is re-randomized — in low-reuse
//     workloads (mostly jumps) nothing stays reusable.
//   - DrillDown/RollUp change the join graph and group-by keys.
func (st *state) apply(r *rng, kind Interaction, overlap float64) {
	const ageDomainLo, ageDomainHi, ageW = 18, 92, 20
	switch kind {
	case ZoomIn:
		w := st.ageHi - st.ageLo
		newW := int64(float64(w) * clampF(overlap*1.2, 0.15, 0.8))
		if newW < 4 {
			newW = 4
		}
		if newW >= w {
			return // cannot narrow further: behaves like a repeat
		}
		off := r.intn(w - newW + 1)
		st.ageLo += off
		st.ageHi = st.ageLo + newW

	case ZoomOut:
		width := st.hi - st.lo
		newW := int64(float64(width) / clampF(overlap*1.5, 0.2, 0.9))
		if newW > st.maxWidth {
			newW = st.maxWidth
		}
		if newW <= width {
			return
		}
		grow := newW - width
		left := r.intn(grow + 1)
		lo := st.lo - left
		if lo < st.baseLo {
			lo = st.baseLo
		}
		hi := lo + newW
		if hi > st.baseHi {
			hi = st.baseHi
			lo = hi - newW
		}
		st.lo, st.hi = lo, hi

	case ShiftLess, ShiftMuch:
		width := st.hi - st.lo
		target := overlap
		if kind == ShiftMuch {
			target = overlap / 4
		}
		target *= 0.7 + 0.6*r.float()
		inter := int64(target * float64(width))
		if inter > width {
			inter = width
		}
		place := func(right bool) (int64, bool) {
			var lo int64
			if right {
				lo = st.hi - inter
			} else {
				lo = st.lo + inter - width
			}
			if lo < st.baseLo || lo+width > st.baseHi {
				return 0, false
			}
			return lo, true
		}
		right := r.float() < 0.5
		lo, ok := place(right)
		if !ok {
			lo, ok = place(!right)
		}
		if !ok {
			lo = st.baseLo + r.intn(st.baseHi-st.baseLo-width+1)
		}
		st.lo, st.hi = lo, lo+width
		if kind == ShiftMuch {
			// Focus jump: the demographic window moves too.
			st.ageLo = ageDomainLo + r.intn(ageDomainHi-ageDomainLo-ageW)
			st.ageHi = st.ageLo + ageW
		}

	case DrillDown:
		if !st.hasPart {
			st.hasPart = true
			st.groupBy = append(st.groupBy, ref("p", "p_mfgr"))
		} else if !st.hasSupp {
			st.hasSupp = true
			st.groupBy = append(st.groupBy, ref("s", "s_nationkey"))
		}
	case RollUp:
		if st.hasSupp {
			st.hasSupp = false
			st.groupBy = dropRef(st.groupBy, ref("s", "s_nationkey"))
		} else if st.hasPart {
			st.hasPart = false
			st.groupBy = dropRef(st.groupBy, ref("p", "p_mfgr"))
		} else if len(st.groupBy) > 1 {
			st.groupBy = st.groupBy[:len(st.groupBy)-1]
		}
	}
}

func dropRef(refs []storage.ColRef, r storage.ColRef) []storage.ColRef {
	out := refs[:0]
	for _, x := range refs {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// query materializes the current state as a logical query.
func (st *state) query() *plan.Query {
	q := &plan.Query{
		Relations: []plan.Rel{
			{Alias: "c", Table: "customer"},
			{Alias: "o", Table: "orders"},
			{Alias: "l", Table: "lineitem"},
		},
		Joins: []plan.JoinPred{
			{Left: ref("c", "c_custkey"), Right: ref("o", "o_custkey")},
			{Left: ref("o", "o_orderkey"), Right: ref("l", "l_orderkey")},
		},
	}
	if st.hasPart {
		q.Relations = append(q.Relations, plan.Rel{Alias: "p", Table: "part"})
		q.Joins = append(q.Joins, plan.JoinPred{Left: ref("l", "l_partkey"), Right: ref("p", "p_partkey")})
	}
	if st.hasSupp {
		q.Relations = append(q.Relations, plan.Rel{Alias: "s", Table: "supplier"})
		q.Joins = append(q.Joins, plan.JoinPred{Left: ref("l", "l_suppkey"), Right: ref("s", "s_suppkey")})
	}
	q.Filter = expr.NewBox(
		expr.Pred{
			Col: ref("l", "l_shipdate"),
			Con: expr.IntervalConstraint(types.Date, expr.Interval{
				HasLo: true, Lo: types.NewDate(st.lo), LoIncl: true,
				HasHi: true, Hi: types.NewDate(st.hi), HiIncl: false,
			}),
		},
		expr.Pred{
			Col: ref("c", "c_age"),
			Con: expr.IntervalConstraint(types.Int64, expr.Interval{
				HasLo: true, Lo: types.NewInt(st.ageLo), LoIncl: true,
				HasHi: true, Hi: types.NewInt(st.ageHi), HiIncl: true,
			}),
		},
	)
	q.GroupBy = append([]storage.ColRef{}, st.groupBy...)
	q.Select = append([]storage.ColRef{}, st.groupBy...)
	q.Aggs = []expr.AggSpec{
		{Func: expr.AggSum, Arg: &expr.Bin{
			Op: expr.OpMul,
			L:  &expr.Col{Ref: ref("l", "l_extendedprice")},
			R: &expr.Bin{Op: expr.OpSub,
				L: &expr.Const{V: types.NewFloat(1)},
				R: &expr.Col{Ref: ref("l", "l_discount")}},
		}, Alias: "revenue"},
		{Func: expr.AggCount, Alias: "n"},
	}
	return q
}

// SQL renders a step as executable SQL text.
func (s Step) SQL() string {
	q := s.Query
	sql := "SELECT "
	for i, g := range q.Select {
		if i > 0 {
			sql += ", "
		}
		sql += g.String()
	}
	for _, a := range q.Aggs {
		sql += ", " + a.String()
	}
	sql += " FROM "
	for i, rel := range q.Relations {
		if i > 0 {
			sql += ", "
		}
		sql += rel.Table + " " + rel.Alias
	}
	sql += " WHERE "
	for i, j := range q.Joins {
		if i > 0 {
			sql += " AND "
		}
		sql += j.String()
	}
	sql += fmt.Sprintf(" AND l.l_shipdate >= DATE '%s' AND l.l_shipdate < DATE '%s'",
		types.FormatDate(s.Lo), types.FormatDate(s.Hi))
	sql += " GROUP BY "
	for i, g := range q.GroupBy {
		if i > 0 {
			sql += ", "
		}
		sql += g.String()
	}
	return sql
}

// MeasureOverlap reports the average window-overlap fraction between
// consecutive steps (validation metric for the level targets).
func MeasureOverlap(steps []Step) float64 {
	if len(steps) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(steps); i++ {
		a, b := steps[i-1], steps[i]
		lo := a.Lo
		if b.Lo > lo {
			lo = b.Lo
		}
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		inter := float64(hi - lo)
		if inter < 0 {
			inter = 0
		}
		width := float64(b.Hi - b.Lo)
		if prev := float64(a.Hi - a.Lo); prev > width {
			width = prev
		}
		if width > 0 {
			total += inter / width
		}
	}
	return total / float64(len(steps)-1)
}
