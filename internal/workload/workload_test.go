package workload

import (
	"testing"

	"hashstash/internal/catalog"
	"hashstash/internal/tpch"
)

func TestGenerateShape(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	for _, tbl := range db.Tables() {
		cat.Register(tbl)
	}
	for _, level := range []Level{Low, Medium, High} {
		steps := Generate(Config{Level: level, N: 64})
		if len(steps) != 64 {
			t.Fatalf("%v: %d steps", level, len(steps))
		}
		if steps[0].Kind != Seed {
			t.Errorf("%v: first step is %v", level, steps[0].Kind)
		}
		for i, s := range steps {
			if err := s.Query.Validate(cat); err != nil {
				t.Fatalf("%v step %d (%v): %v", level, i, s.Kind, err)
			}
			if s.Lo >= s.Hi {
				t.Fatalf("%v step %d: window [%d, %d)", level, i, s.Lo, s.Hi)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Level: Medium, N: 32})
	b := Generate(Config{Level: Medium, N: 32})
	for i := range a {
		if a[i].Lo != b[i].Lo || a[i].Hi != b[i].Hi || a[i].Kind != b[i].Kind {
			t.Fatalf("step %d differs", i)
		}
	}
	c := Generate(Config{Level: Medium, N: 32, Seed: 99})
	same := true
	for i := range a {
		if a[i].Lo != c[i].Lo || a[i].Hi != c[i].Hi {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced identical windows")
	}
}

func TestOverlapOrdering(t *testing.T) {
	low := MeasureOverlap(Generate(Config{Level: Low, N: 64}))
	med := MeasureOverlap(Generate(Config{Level: Medium, N: 64}))
	high := MeasureOverlap(Generate(Config{Level: High, N: 64}))
	t.Logf("overlaps: low=%.3f med=%.3f high=%.3f", low, med, high)
	if !(low < med && med < high) {
		t.Errorf("overlap ordering violated: low=%.3f med=%.3f high=%.3f", low, med, high)
	}
	if high < 0.25 {
		t.Errorf("high-reuse overlap %.3f too low", high)
	}
	if low > 0.15 {
		t.Errorf("low-reuse overlap %.3f too high", low)
	}
}

func TestInteractionMixIncludesDrill(t *testing.T) {
	steps := Generate(Config{Level: High, N: 64})
	seen := map[Interaction]int{}
	fiveWay := 0
	for _, s := range steps {
		seen[s.Kind]++
		if len(s.Query.Relations) == 5 {
			fiveWay++
		}
	}
	for _, k := range []Interaction{ZoomIn, ZoomOut, ShiftMuch, ShiftLess} {
		if seen[k] == 0 {
			t.Errorf("interaction %v never generated", k)
		}
	}
	if seen[DrillDown] == 0 {
		t.Error("no drill-downs generated")
	}
	if fiveWay == 0 {
		t.Error("no 5-way joins reached")
	}
}

func TestStepSQLRendersAndParses(t *testing.T) {
	steps := Generate(Config{Level: Medium, N: 8})
	for _, s := range steps {
		sql := s.SQL()
		if len(sql) == 0 {
			t.Fatal("empty SQL")
		}
	}
}

func TestExp2Trace(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	for _, tbl := range db.Tables() {
		cat.Register(tbl)
	}
	trace := Exp2Trace()
	if len(trace) != 7 {
		t.Fatalf("trace length %d", len(trace))
	}
	kinds := []Interaction{Seed, ZoomIn, ZoomOut, ShiftMuch, ShiftLess, DrillDown, RollUp}
	for i, s := range trace {
		if s.Kind != kinds[i] {
			t.Errorf("step %d kind %v, want %v", i, s.Kind, kinds[i])
		}
		if err := s.Query.Validate(cat); err != nil {
			t.Errorf("step %d: %v", i, err)
		}
		if len(s.Query.Relations) != 5 {
			t.Errorf("step %d has %d relations", i, len(s.Query.Relations))
		}
	}
	if len(trace[5].Query.GroupBy) != 2 {
		t.Error("drill-down should add a group-by column")
	}
	if len(trace[6].Query.GroupBy) != 1 || trace[6].Query.GroupBy[0].Column != "p_brand" {
		t.Errorf("roll-up group-by = %v", trace[6].Query.GroupBy)
	}
}

func TestLevelAndInteractionStrings(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" || Level(9).String() != "level(?)" {
		t.Error("Level strings")
	}
	if Seed.String() != "seed" || ZoomIn.String() != "zoom-in" || Interaction(99).String() != "interaction(?)" {
		t.Error("Interaction strings")
	}
	if Low.Overlap() >= Medium.Overlap() || Medium.Overlap() >= High.Overlap() {
		t.Error("Overlap ordering")
	}
}

func TestGenerateRangeShape(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.001, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	for _, tbl := range db.Tables() {
		cat.Register(tbl)
	}
	steps := GenerateRange(RangeConfig{N: 24, Selectivity: 0.01, TopK: 10})
	if len(steps) != 24 {
		t.Fatalf("%d steps", len(steps))
	}
	topk := 0
	for i, s := range steps {
		if err := s.Query.Validate(cat); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(s.Query.Relations) != 1 {
			t.Fatalf("step %d: %d relations", i, len(s.Query.Relations))
		}
		if s.Lo >= s.Hi {
			t.Fatalf("step %d: window [%d, %d)", i, s.Lo, s.Hi)
		}
		if s.Query.OrderBy != nil {
			topk++
			if s.Query.Limit != 10 {
				t.Fatalf("step %d: limit %d", i, s.Query.Limit)
			}
		}
	}
	if topk != 24/4 {
		t.Errorf("top-k steps = %d, want %d", topk, 24/4)
	}

	a := GenerateRange(RangeConfig{N: 8})
	b := GenerateRange(RangeConfig{N: 8})
	for i := range a {
		if a[i].Lo != b[i].Lo {
			t.Fatal("not deterministic")
		}
	}
}
