package hashstash

// Grouped configuration. The 20+ single-purpose With* options grew one
// per PR; new code configures Open with two structs — Tuning (capacity
// and execution sizing) and Ablations (paper-experiment feature
// switches) — and the old options remain as thin deprecated wrappers.
// See ARCHITECTURE.md for the migration table.

// Tuning groups the capacity and execution-sizing knobs. Zero values
// leave the engine defaults untouched, so partial literals compose:
//
//	hashstash.Open(hashstash.WithTuning(hashstash.Tuning{
//	    CacheBudget: 64 << 20,
//	    Parallelism: 8,
//	}))
type Tuning struct {
	// CacheBudget bounds the hash-table cache in bytes (0 = unlimited).
	CacheBudget int64
	// ColdTierBudget bounds the compact cold tier in bytes (0 = cold
	// tier disabled).
	ColdTierBudget int64
	// IndexBuildBudget caps the total bytes of lazily built secondary
	// indexes (0 = unlimited).
	IndexBuildBudget int64
	// Parallelism is the morsel-driven worker-pool size (0 = all CPUs,
	// 1 = serial).
	Parallelism int
	// MorselRows overrides the morsel granularity (0 = storage default).
	MorselRows int
	// RehashBudget caps chain nodes per bucket-maintenance pass (0 =
	// hashtable default).
	RehashBudget int
	// Shards partitions the engine into n locality domains (<= 1 keeps
	// the single-domain engine).
	Shards int
	// SoftMemoryLimit is the memory governor's soft watermark (bytes):
	// above it the engine sheds cache, vetoes new index builds and the
	// serving front-end shrinks batch windows. 0 = no soft watermark.
	SoftMemoryLimit int64
	// HardMemoryLimit is the governor's hard watermark (bytes): above
	// it admission refuses new queries with a retriable overload error
	// and a computed Retry-After. 0 = no hard watermark.
	HardMemoryLimit int64
}

// WithTuning applies every non-zero field of t. It composes with the
// other options; later options win on overlap.
func WithTuning(t Tuning) Option {
	return func(c *config) {
		if t.CacheBudget != 0 {
			c.budget = t.CacheBudget
		}
		if t.ColdTierBudget != 0 {
			c.coldBudget = t.ColdTierBudget
		}
		if t.IndexBuildBudget != 0 {
			c.indexBudget = t.IndexBuildBudget
		}
		if t.Parallelism != 0 {
			c.parallelism = t.Parallelism
		}
		if t.MorselRows != 0 {
			c.morselRows = t.MorselRows
		}
		if t.RehashBudget != 0 {
			c.rehashBudget = t.RehashBudget
		}
		if t.Shards != 0 {
			c.shards = t.Shards
		}
		if t.SoftMemoryLimit != 0 {
			c.memSoft = t.SoftMemoryLimit
		}
		if t.HardMemoryLimit != 0 {
			c.memHard = t.HardMemoryLimit
		}
	}
}

// Ablations groups the feature switches used by the paper's ablation
// experiments. Every field defaults to false (= feature on); setting
// one disables the named mechanism.
type Ablations struct {
	// LRUEviction replaces benefit-per-byte eviction with plain LRU and
	// disables the cold tier.
	LRUEviction bool
	// NoBenefitOptimizations disables the Section 3.4 benefit-oriented
	// optimizations.
	NoBenefitOptimizations bool
	// NoPartialReuse disables partial reuse.
	NoPartialReuse bool
	// NoOverlappingReuse disables overlapping reuse.
	NoOverlappingReuse bool
	// NoInterPipelineParallelism restricts the scheduler to one
	// pipeline at a time in compile order.
	NoInterPipelineParallelism bool
	// NoWorkStealing pins each worker to its seeded morsel partition.
	NoWorkStealing bool
	// NoBucketRehash disables incremental bucket maintenance of widened
	// cached tables.
	NoBucketRehash bool
	// NoSecondaryIndexes disables the ordered secondary-index access
	// path.
	NoSecondaryIndexes bool
	// Faults arms deterministic fault injection for resilience testing:
	// a comma-separated spec of point=mode:trigger terms, e.g.
	// "htcache.publish=err:once,sched.dispatch=panic:every:50". Modes
	// are err and panic; triggers are once, every:N and p:P[:seed].
	// Empty leaves injection disarmed (zero-overhead no-ops). The
	// HASHSTASH_FAULTS environment variable arms the same grammar when
	// this field is unset. Arming is process-global.
	Faults string
}

// WithAblations applies the set switches (unset fields leave the
// features enabled).
func WithAblations(a Ablations) Option {
	return func(c *config) {
		if a.LRUEviction {
			c.lruEviction = true
		}
		if a.NoBenefitOptimizations {
			c.benefit = false
		}
		if a.NoPartialReuse {
			c.partial = false
		}
		if a.NoOverlappingReuse {
			c.overlapping = false
		}
		if a.NoInterPipelineParallelism {
			c.serialPipelines = true
		}
		if a.NoWorkStealing {
			c.noSteal = true
		}
		if a.NoBucketRehash {
			c.noBucketRehash = true
		}
		if a.NoSecondaryIndexes {
			c.noSecondaryIdx = true
		}
		if a.Faults != "" {
			c.faults = a.Faults
		}
	}
}
