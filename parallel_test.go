package hashstash

import (
	"fmt"
	"sync"
	"testing"
)

// Queries exercising the morsel-driven runner end to end: scan+agg,
// join builds, reuse across overlapping date ranges (the narrower-range
// variants trigger subsuming reuse against cached wider tables, the
// wider ones partial reuse — the copy-on-write widening path).
func parallelQueries() []string {
	dates := []string{"1994-01-01", "1995-03-15", "1996-06-01"}
	var qs []string
	for _, d := range dates {
		qs = append(qs, fmt.Sprintf(`
			SELECT c.c_age, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM customer c, orders o, lineitem l
			WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
			  AND l.l_shipdate >= DATE '%s'
			GROUP BY c.c_age`, d))
		qs = append(qs, fmt.Sprintf(`
			SELECT l.l_returnflag, COUNT(*) AS n, AVG(l.l_quantity) AS avg_qty
			FROM lineitem l
			WHERE l.l_shipdate >= DATE '%s'
			GROUP BY l.l_returnflag`, d))
	}
	return qs
}

// TestParallelExecMatchesSerial runs the same workload twice — serial
// workers and a 4-worker pool over small morsels — and compares
// canonicalized results query by query.
func TestParallelExecMatchesSerial(t *testing.T) {
	serial := openTPCH(t, WithParallelism(1))
	parallel := openTPCH(t, WithParallelism(4), WithMorselRows(256))
	for i, q := range parallelQueries() {
		sres, err := serial.Exec(q)
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		pres, err := parallel.Exec(q)
		if err != nil {
			t.Fatalf("parallel query %d: %v", i, err)
		}
		s, p := canonical(sres), canonical(pres)
		if len(s) != len(p) {
			t.Fatalf("query %d: serial %d rows, parallel %d", i, len(s), len(p))
		}
		for j := range s {
			if s[j] != p[j] {
				t.Fatalf("query %d row %d: serial %q, parallel %q", i, j, s[j], p[j])
			}
		}
		if pres.RowsIn == 0 {
			t.Fatalf("query %d: RowsIn not surfaced", i)
		}
	}
}

// TestConcurrentExecGolden runs many concurrent Exec calls against one
// shared cache and asserts every result matches the serial golden —
// regardless of which reuse mode each execution picked. Run with -race.
func TestConcurrentExecGolden(t *testing.T) {
	queries := parallelQueries()

	// Goldens from a fresh serial engine, one query at a time.
	goldenDB := openTPCH(t, WithParallelism(1))
	goldens := make([][]string, len(queries))
	for i, q := range queries {
		res, err := goldenDB.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = canonical(res)
	}

	db := openTPCH(t, WithParallelism(4), WithMorselRows(256))
	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				res, err := db.Exec(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", w, qi, err)
					return
				}
				got := canonical(res)
				want := goldens[qi]
				if len(got) != len(want) {
					errCh <- fmt.Errorf("worker %d query %d: %d rows, want %d", w, qi, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errCh <- fmt.Errorf("worker %d query %d row %d: %q != %q", w, qi, j, got[j], want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if db.CacheStats().Hits == 0 {
		t.Error("concurrent workload never reused a cached table")
	}
}

// TestConcurrentExecUnderGCPressure repeats the concurrent workload
// with a tight cache budget, so the LRU garbage collector races with
// pinning; pinned tables must never be evicted mid-query (evicting one
// would crash or corrupt a probe).
func TestConcurrentExecUnderGCPressure(t *testing.T) {
	queries := parallelQueries()
	db := openTPCH(t, WithParallelism(2), WithMorselRows(256), WithCacheBudget(64*1024))
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				if _, err := db.Exec(queries[(w*3+r)%len(queries)]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentMaterializedBaseline runs the materialized baseline
// engine from many goroutines (run with -race): queries share the DB
// lock in read mode and the temp-table cache synchronizes internally,
// so read-only baseline traffic executes concurrently and result sets
// stay golden.
func TestConcurrentMaterializedBaseline(t *testing.T) {
	queries := parallelQueries()
	golden := openTPCH(t, WithEngine(EngineMaterialized))
	goldens := make([][]string, len(queries))
	for i, q := range queries {
		res, err := golden.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = canonical(res)
	}

	db := openTPCH(t, WithEngine(EngineMaterialized))
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				qi := (w + r) % len(queries)
				res, err := db.Exec(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", w, qi, err)
					return
				}
				got := canonical(res)
				if len(got) != len(goldens[qi]) {
					errCh <- fmt.Errorf("worker %d query %d: %d rows, want %d", w, qi, len(got), len(goldens[qi]))
					return
				}
				for j := range got {
					if got[j] != goldens[qi][j] {
						errCh <- fmt.Errorf("worker %d query %d row %d: %q != %q", w, qi, j, got[j], goldens[qi][j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentExecBatch mixes batch and single-query traffic over the
// shared cache (batches re-tag private widened copies of reused
// tables, so they too run concurrently).
func TestConcurrentExecBatch(t *testing.T) {
	queries := parallelQueries()
	db := openTPCH(t, WithParallelism(2), WithMorselRows(256))
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				if _, err := db.ExecBatch(queries[:4]); err != nil {
					errCh <- err
				}
				return
			}
			for r := 0; r < 4; r++ {
				if _, err := db.Exec(queries[r]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
