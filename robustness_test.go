package hashstash

import (
	"errors"
	"testing"

	"hashstash/hashstasherr"
	"hashstash/internal/faultinject"
	"hashstash/internal/types"
)

// TestQuarantineAfterPanic walks the full quarantine lifecycle: a
// query that panics while probing cached hash tables strikes their
// lineages, the struck lineage is never republished, and a base-table
// change absolves the strike.
func TestQuarantineAfterPanic(t *testing.T) {
	db := openTPCH(t)
	const sql = `
		SELECT c.c_age, SUM(o.o_totalprice) AS total
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey
		GROUP BY c.c_age`

	// Warm run publishes the build-side hash table.
	want, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if db.CacheStats().Registered == 0 {
		t.Fatal("warm run cached nothing; the quarantine path has nothing to blame")
	}

	// Second run reuses the cached table and panics mid-probe. The
	// recover boundary must convert it to ErrInternal and lay a strike
	// on every pinned artifact.
	if err := faultinject.Arm("exec.morsel=panic:once"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	if _, err := db.Exec(sql); !errors.Is(err, hashstasherr.ErrInternal) {
		t.Fatalf("panicking reuse run = %v, want ErrInternal", err)
	}
	faultinject.Disarm()

	st := db.CacheStats()
	if st.Quarantines == 0 {
		t.Fatal("contained panic laid no quarantine blame")
	}
	struck := st.QuarantinedLineages
	if struck == 0 {
		t.Fatal("no lineage struck after contained panic")
	}

	// Third run: correct answers without the poisoned artifact, and the
	// struck lineage must not sneak back into the cache.
	got, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("post-quarantine run: %v", err)
	}
	cg, cw := canonical(got), canonical(want)
	if len(cg) != len(cw) {
		t.Fatalf("post-quarantine rows = %d, want %d", len(cg), len(cw))
	}
	for i := range cg {
		if cg[i] != cw[i] {
			t.Fatalf("post-quarantine row %d: %s vs %s", i, cg[i], cw[i])
		}
	}
	if now := db.CacheStats().QuarantinedLineages; now != struck {
		t.Fatalf("struck lineages changed %d -> %d without a base-table change", struck, now)
	}

	// A base-table change absolves the strike: the old artifact was
	// invalid anyway, so the lineage gets a clean slate.
	if err := db.InsertRows("customer", [][]Value{{
		types.NewInt(999001), types.NewString("Customer#absolve"),
		types.NewInt(33), types.NewString("BUILDING"),
		types.NewInt(7), types.NewFloat(123.45),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("orders", [][]Value{{
		types.NewInt(999001), types.NewInt(999001), types.NewDate(9500),
		types.NewFloat(1000.0), types.NewInt(0), types.NewString("O"),
	}}); err != nil {
		t.Fatal(err)
	}
	if now := db.CacheStats().QuarantinedLineages; now != 0 {
		t.Fatalf("%d lineages still struck after base-table change", now)
	}
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("run after absolution: %v", err)
	}
}

// govStub is an unsheddable memory source for forcing governor levels.
type govStub struct{ fp int64 }

func (s *govStub) FootprintBytes() int64 { return s.fp }
func (s *govStub) Shed(int64) int64      { return 0 }

// TestMemGovIndexBuildVeto: under Soft memory pressure the governor
// vetoes speculative index builds — the ski-rental accumulator can
// wait, new memory cannot — and the veto lifts with the pressure.
func TestMemGovIndexBuildVeto(t *testing.T) {
	db := Open(WithTuning(Tuning{SoftMemoryLimit: 1000, HardMemoryLimit: 1 << 50}))
	if err := db.LoadTPCH(0.002); err != nil {
		t.Fatal(err)
	}
	gov := db.MemoryGovernor()
	if gov == nil {
		t.Fatal("Tuning memory limits did not create a governor")
	}
	src := &govStub{fp: 5000}
	gov.AddSource(src)
	gov.Refresh()
	if gov.Level().String() != "soft" {
		t.Fatalf("governor level = %s, want soft", gov.Level())
	}

	sql := rangeShapes[0]
	for i := 0; i < 64; i++ {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if builds := db.CacheStats().Index.Builds; builds != 0 {
		t.Fatalf("%d index builds under Soft pressure, want 0", builds)
	}
	if gov.Stats().VetoedBuilds == 0 {
		t.Fatal("governor recorded no vetoed builds")
	}

	// Pressure released: the accumulator has long since paid for the
	// build, so the next runs build promptly.
	src.fp = 0
	gov.Refresh()
	if gov.Level().String() != "ok" {
		t.Fatalf("governor level after release = %s, want ok", gov.Level())
	}
	warmIndex(t, db, sql)
}
