package hashstash

import (
	"fmt"
	"testing"
)

// assertGolden compares two results after canonicalization (scheduled
// execution merges worker partials in nondeterministic order; result
// sets are unordered).
func assertGolden(t *testing.T, label string, got, want *Result) {
	t.Helper()
	g, w := canonical(got), canonical(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for j := range w {
		if g[j] != w[j] {
			t.Fatalf("%s row %d: %q != %q", label, j, g[j], w[j])
		}
	}
}

// TestScheduledBatchMatchesSerial runs the same query batch — mergeable
// lineitem aggregates over two group-by key sets, so the shared plan's
// grouping spine fans one scan out to several grouping tables — under
// the serial runner and the work-stealing scheduler, twice each so the
// second batch re-tags and reuses the cached grouping tables.
func TestScheduledBatchMatchesSerial(t *testing.T) {
	batch := []string{
		`SELECT l.l_returnflag, COUNT(*) AS n, SUM(l.l_quantity) AS q
		 FROM lineitem l WHERE l.l_shipdate >= DATE '1995-01-01'
		 GROUP BY l.l_returnflag`,
		`SELECT l.l_returnflag, SUM(l.l_extendedprice) AS rev
		 FROM lineitem l WHERE l.l_shipdate >= DATE '1996-01-01'
		 GROUP BY l.l_returnflag`,
		`SELECT l.l_linenumber, COUNT(*) AS n
		 FROM lineitem l WHERE l.l_shipdate >= DATE '1995-06-01'
		 GROUP BY l.l_linenumber`,
		`SELECT l.l_linenumber, SUM(l.l_discount) AS d
		 FROM lineitem l WHERE l.l_shipdate >= DATE '1994-06-01'
		 GROUP BY l.l_linenumber`,
	}
	serial := openTPCH(t, WithParallelism(1))
	scheduled := openTPCH(t, WithParallelism(4), WithMorselRows(512))
	for round := 0; round < 2; round++ {
		sres, err := serial.ExecBatch(batch)
		if err != nil {
			t.Fatalf("serial round %d: %v", round, err)
		}
		pres, err := scheduled.ExecBatch(batch)
		if err != nil {
			t.Fatalf("scheduled round %d: %v", round, err)
		}
		for i := range batch {
			assertGolden(t, fmt.Sprintf("round %d query %d", round, i), pres[i], sres[i])
		}
	}
}

// TestScheduledMatreuseMatchesSerial drives the materialized baseline
// through the scheduler: join builds spill per-worker temp partials
// that merge at pipeline end, and the aggregate path's
// readout-from-spill waits on its producer through a pipeline DAG edge
// instead of implicit ordering. The second round reuses materialized
// temp tables (rebuild-from-spill pipelines).
func TestScheduledMatreuseMatchesSerial(t *testing.T) {
	queries := parallelQueries()
	serial := openTPCH(t, WithEngine(EngineMaterialized), WithParallelism(1))
	scheduled := openTPCH(t, WithEngine(EngineMaterialized), WithParallelism(4), WithMorselRows(512))
	for round := 0; round < 2; round++ {
		for i, q := range queries {
			sres, err := serial.Exec(q)
			if err != nil {
				t.Fatalf("serial round %d query %d: %v", round, i, err)
			}
			pres, err := scheduled.Exec(q)
			if err != nil {
				t.Fatalf("scheduled round %d query %d: %v", round, i, err)
			}
			assertGolden(t, fmt.Sprintf("round %d query %d", round, i), pres, sres)
		}
	}
	if scheduled.CacheStats().Hits == 0 {
		t.Error("scheduled baseline never reused a materialized table")
	}
}

// TestSchedulerKnobsGolden: the ablation knobs — strict pipeline order,
// no stealing — change scheduling, never results.
func TestSchedulerKnobsGolden(t *testing.T) {
	queries := parallelQueries()
	golden := openTPCH(t, WithParallelism(1))
	goldens := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := golden.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = res
	}
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"serialPipelines", []Option{WithParallelism(4), WithMorselRows(512), WithoutInterPipelineParallelism()}},
		{"noSteal", []Option{WithParallelism(4), WithMorselRows(512), WithoutWorkStealing()}},
		{"both", []Option{WithParallelism(4), WithMorselRows(512), WithoutInterPipelineParallelism(), WithoutWorkStealing()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := openTPCH(t, tc.opts...)
			for i, q := range queries {
				res, err := db.Exec(q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				assertGolden(t, fmt.Sprintf("query %d", i), res, goldens[i])
			}
		})
	}
}
