package hashstash

import (
	"context"
	"sync"
	"sync/atomic"
)

// Session is a lightweight per-connection handle over a DB: it carries
// a default tenant (the serving front-end's fairness scope), a
// prepared-shape cache that memoizes Parse by SQL text, and
// session-scoped counters. Sessions are cheap (create one per
// connection) and safe for concurrent use; the underlying DB is
// shared.
type Session struct {
	db     *DB
	tenant string

	mu       sync.Mutex
	prepared map[string]*Query

	queries      atomic.Int64
	preparedHits atomic.Int64
}

// sessionPreparedCap bounds the per-session parse cache. Serving
// workloads re-send a small family of statement texts per connection;
// past the cap the cache resets rather than tracking recency (a miss
// is just one re-parse).
const sessionPreparedCap = 1024

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithTenant sets the session's tenant identity (the serving
// front-end's fair-admission scope). Empty means the default tenant.
func WithTenant(tenant string) SessionOption {
	return func(s *Session) { s.tenant = tenant }
}

// NewSession opens a per-connection handle.
func (db *DB) NewSession(opts ...SessionOption) *Session {
	s := &Session{db: db, prepared: make(map[string]*Query)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Tenant returns the session's tenant identity.
func (s *Session) Tenant() string { return s.tenant }

// Parse memoizes DB.Parse by statement text: a connection replaying
// the same statement family parses each text once. Parsed queries are
// immutable, so cached pointers are shared safely.
func (s *Session) Parse(sql string) (*Query, error) {
	s.mu.Lock()
	q, ok := s.prepared[sql]
	s.mu.Unlock()
	if ok {
		s.preparedHits.Add(1)
		return q, nil
	}
	q, err := s.db.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.prepared) >= sessionPreparedCap {
		s.prepared = make(map[string]*Query)
	}
	s.prepared[sql] = q
	s.mu.Unlock()
	return q, nil
}

// ExecContext parses (through the session's prepared cache) and runs
// one query under ctx.
func (s *Session) ExecContext(ctx context.Context, sql string) (*Result, error) {
	q, err := s.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	return s.db.ExecParsed(ctx, q)
}

// Exec is ExecContext under context.Background().
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// SessionStats are session-scoped counters.
type SessionStats struct {
	// Queries counts queries executed through the session.
	Queries int64
	// PreparedHits counts Parse calls served from the prepared-shape
	// cache.
	PreparedHits int64
}

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Queries:      s.queries.Load(),
		PreparedHits: s.preparedHits.Load(),
	}
}
