package hashstash

import (
	"fmt"
	"testing"

	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// BenchmarkPartitionKernel measures the vectorized hash-partition split
// that every table load and exchange runs through. Steady state must be
// 0 allocs/op: the partitioner reuses its histogram, destination and
// permutation scratch across calls.
func BenchmarkPartitionKernel(b *testing.B) {
	const rows = 256 * 1024
	col := storage.NewColumn("k", types.Int64)
	for i := 0; i < rows; i++ {
		col.Append(types.NewInt(int64(i) * 2654435761))
	}
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := storage.NewPartitioner(shards)
			p.Partition(col, -1) // warm scratch outside the timer
			b.SetBytes(8 * rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Partition(col, -1)
			}
		})
	}
}

// benchShardedDB opens a TPC-H database at the given shard count with
// the standard test placement (customer/orders co-partitioned on the
// customer key, lineitem on its own order key).
func benchShardedDB(b *testing.B, shards, workers int) *DB {
	b.Helper()
	opts := []Option{WithParallelism(workers), WithMorselRows(16 * 1024)}
	if shards > 1 {
		opts = append(opts,
			WithShards(shards),
			WithPartitionKey("customer", "c_custkey"),
			WithPartitionKey("orders", "o_custkey"),
			WithPartitionKey("lineitem", "l_orderkey"))
	}
	db := Open(opts...)
	if err := db.LoadTPCH(0.02); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkShardedScanAgg times a full-scan aggregation (Q1 shape) as
// it scatters across shard-local caches and merges partial aggregates,
// against the unsharded engine on the same worker budget. The cache is
// cleared every iteration so the build pipelines run each time.
func BenchmarkShardedScanAgg(b *testing.B) {
	const sql = `
		SELECT l.l_returnflag, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
		       COUNT(*) AS n, AVG(l.l_quantity) AS avg_qty
		FROM lineitem l
		GROUP BY l.l_returnflag`
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := benchShardedDB(b, shards, 4)
			if _, err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db.ClearCache()
				b.StartTimer()
				if _, err := db.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoPartitionedJoin times the co-partitioned CUSTOMER ⋈ ORDERS
// aggregation: each shard probes only its own fragments (no exchange),
// and the gather merges the group partials.
func BenchmarkCoPartitionedJoin(b *testing.B) {
	const sql = `
		SELECT c.c_age, SUM(o.o_totalprice) AS spend
		FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey
		GROUP BY c.c_age`
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := benchShardedDB(b, shards, 4)
			if _, err := db.Exec(sql); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db.ClearCache()
				b.StartTimer()
				if _, err := db.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedPointRoute times the routed path end to end: a
// partition-key point query planned and executed on exactly one shard,
// reusing that shard's cached artifacts across iterations.
func BenchmarkShardedPointRoute(b *testing.B) {
	db := benchShardedDB(b, 4, 4)
	mk := func(key int) string {
		return fmt.Sprintf(`SELECT c.c_age, SUM(o.o_totalprice) AS spend
			FROM customer c, orders o
			WHERE c.c_custkey = o.o_custkey AND c.c_custkey = %d
			GROUP BY c.c_age`, key)
	}
	if _, err := db.Exec(mk(1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(mk(1 + i%64)); err != nil {
			b.Fatal(err)
		}
	}
}
