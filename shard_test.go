package hashstash

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"hashstash/internal/storage"
	"hashstash/internal/types"
)

// tpchPartitionKeys is the placement the sharded tests run under:
// customer and orders co-partitioned on the customer key, lineitem
// partitioned on its own join key (so ORDERS ⋈ LINEITEM joins are
// deliberately mismatched and exercise the exchange); part and
// supplier stay replicated.
func tpchPartitionKeys() []Option {
	return []Option{
		WithPartitionKey("customer", "c_custkey"),
		WithPartitionKey("orders", "o_custkey"),
		WithPartitionKey("lineitem", "l_orderkey"),
	}
}

func openShardedTPCH(t *testing.T, shards int, opts ...Option) *DB {
	t.Helper()
	all := append([]Option{WithShards(shards)}, tpchPartitionKeys()...)
	all = append(all, opts...)
	return openTPCH(t, all...)
}

// testShardCounts returns the shard counts the equivalence suite runs
// at: 1 (degenerate layout) and 4, and HASHSTASH_TEST_SHARDS adds an
// extra count — the CI race matrix uses it for its dedicated shards leg.
func testShardCounts(t *testing.T) []int {
	counts := []int{1, 4}
	if env := os.Getenv("HASHSTASH_TEST_SHARDS"); env != "" && env != "0" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("HASHSTASH_TEST_SHARDS=%q", env)
		}
		if n != 1 && n != 4 {
			counts = append(counts, n)
		}
	}
	return counts
}

// shardGoldenQueries covers every scatter-gather merge shape plus both
// exchange modes and single-shard routing.
var shardGoldenQueries = []struct {
	name string
	sql  string
}{
	{"filter-scan", `SELECT c.c_name, c.c_age FROM customer c WHERE c.c_age BETWEEN 25 AND 40`},
	{"string-in-set", `SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c
		WHERE c.c_mktsegment IN ('BUILDING', 'AUTOMOBILE') GROUP BY c.c_mktsegment`},
	{"copartitioned-join", `SELECT c.c_age, SUM(o.o_totalprice) AS spend
		FROM customer c, orders o WHERE c.c_custkey = o.o_custkey GROUP BY c.c_age`},
	{"exchange-join", `SELECT o.o_orderstatus, COUNT(*) AS n, SUM(l.l_extendedprice) AS rev
		FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey
		  AND l.l_shipdate >= DATE '1995-01-01' GROUP BY o.o_orderstatus`},
	{"replicated-dim-join", `SELECT s.s_nationkey, COUNT(*) AS n
		FROM supplier s, lineitem l WHERE s.s_suppkey = l.l_suppkey GROUP BY s.s_nationkey`},
	{"avg-superset-groupby", `SELECT c.c_age, AVG(o.o_totalprice) AS avgspend
		FROM customer c, orders o WHERE c.c_custkey = o.o_custkey
		GROUP BY c.c_age, c.c_nationkey`},
	{"order-by-limit", `SELECT o.o_orderkey, o.o_totalprice FROM orders o
		WHERE o.o_totalprice >= 1000 ORDER BY o.o_orderkey LIMIT 25`},
	{"agg-order-by-limit", `SELECT c.c_age, COUNT(*) AS n FROM customer c
		GROUP BY c.c_age ORDER BY c.c_age DESC LIMIT 10`},
	{"q3", q3SQL},
	{"single-shard-point", `SELECT c.c_age, SUM(o.o_totalprice) AS spend
		FROM customer c, orders o WHERE c.c_custkey = o.o_custkey
		  AND c.c_custkey = 42 GROUP BY c.c_age`},
}

// sortRows orders rows by their full canonical rendering so two row
// multisets can be compared pairwise.
func sortRows(rows [][]Value) [][]Value {
	out := append([][]Value(nil), rows...)
	key := func(r []Value) string {
		s := ""
		for _, v := range r {
			if v.Kind == types.Float64 {
				s += fmt.Sprintf("|%.6g", v.F)
			} else {
				s += "|" + v.String()
			}
		}
		return s
	}
	sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// assertSameRows compares result row multisets with a relative float
// tolerance: scatter legs sum partial aggregates in a different order
// than one global aggregation, so float sums may differ in the last
// few bits.
func assertSameRows(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	g, w := sortRows(got.Rows), sortRows(want.Rows)
	for i := range g {
		if len(g[i]) != len(w[i]) {
			t.Fatalf("%s row %d: %d cells, want %d", label, i, len(g[i]), len(w[i]))
		}
		for j := range g[i] {
			a, b := g[i][j], w[i][j]
			if a.Kind == types.Float64 || b.Kind == types.Float64 {
				af, bf := a.AsFloat(), b.AsFloat()
				scale := math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
				if math.Abs(af-bf) > 1e-6*scale {
					t.Fatalf("%s row %d col %d: %v vs %v", label, i, j, af, bf)
				}
				continue
			}
			if a.Compare(b) != 0 {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// TestShardedGoldenEquivalence: the sharded engine must return exactly
// the rows of the unsharded reference for every merge shape, at one
// shard (degenerate layout) and four. Each query runs twice so the
// second run exercises per-shard reuse of the cached artifacts.
func TestShardedGoldenEquivalence(t *testing.T) {
	ref := openTPCH(t, WithEngine(EngineNoReuse))
	for _, shards := range testShardCounts(t) {
		db := openShardedTPCH(t, shards)
		if got := db.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		for _, tc := range shardGoldenQueries {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, tc.name), func(t *testing.T) {
				want, err := ref.Exec(tc.sql)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := db.Exec(tc.sql); err != nil {
					t.Fatal(err)
				}
				got, err := db.Exec(tc.sql) // reuse pass
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Columns) != len(want.Columns) {
					t.Fatalf("columns %v, want %v", got.Columns, want.Columns)
				}
				for i := range got.Columns {
					if got.Columns[i] != want.Columns[i] {
						t.Fatalf("columns %v, want %v", got.Columns, want.Columns)
					}
				}
				// Ordered queries must agree row-for-row before the
				// canonical multiset comparison.
				if tc.name == "order-by-limit" || tc.name == "agg-order-by-limit" {
					for i := range got.Rows {
						if got.Rows[i][0].Compare(want.Rows[i][0]) != 0 {
							t.Fatalf("row %d out of order: %v vs %v", i, got.Rows[i][0], want.Rows[i][0])
						}
					}
				}
				assertSameRows(t, tc.name, got, want)
			})
		}
	}
}

// TestShardedRouting: partition-key point queries execute on exactly
// one shard — observed through the per-shard query counters — and the
// key space spreads across shards; unconstrained queries scatter to
// all of them.
func TestShardedRouting(t *testing.T) {
	const shards = 4
	db := openShardedTPCH(t, shards)
	hit := map[int]bool{}
	for key := int64(1); key <= 24; key++ {
		before := db.ShardQueryCounts()
		sql := fmt.Sprintf(`SELECT c.c_age, SUM(o.o_totalprice) AS spend
			FROM customer c, orders o
			WHERE c.c_custkey = o.o_custkey AND c.c_custkey = %d
			GROUP BY c.c_age`, key)
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
		after := db.ShardQueryCounts()
		touched := -1
		for s := range after {
			switch after[s] - before[s] {
			case 0:
			case 1:
				if touched >= 0 {
					t.Fatalf("key %d touched shards %d and %d", key, touched, s)
				}
				touched = s
			default:
				t.Fatalf("key %d: shard %d ran %d legs", key, s, after[s]-before[s])
			}
		}
		if touched < 0 {
			t.Fatalf("key %d touched no shard", key)
		}
		if want := storage.ShardOf(types.NewInt(key), shards); touched != want {
			t.Fatalf("key %d routed to shard %d, hash says %d", key, touched, want)
		}
		hit[touched] = true
	}
	if len(hit) < 2 {
		t.Fatalf("24 keys all routed to %d shard(s)", len(hit))
	}

	// An unconstrained aggregate must scatter: every shard runs a leg.
	before := db.ShardQueryCounts()
	if _, err := db.Exec(`SELECT c.c_age, COUNT(*) AS n FROM customer c GROUP BY c.c_age`); err != nil {
		t.Fatal(err)
	}
	after := db.ShardQueryCounts()
	for s := range after {
		if after[s]-before[s] != 1 {
			t.Fatalf("scatter: shard %d ran %d legs, want 1", s, after[s]-before[s])
		}
	}
}

// TestShardedInsertInvalidation: inserting rows into a partitioned
// table invalidates cached artifacts only on the shards whose
// fragments received rows — the other shards' caches stay warm.
func TestShardedInsertInvalidation(t *testing.T) {
	const shards = 4
	db := Open(WithShards(shards), WithPartitionKey("pt", "k"))
	if err := db.CreateTable("pt", map[string]Kind{"k": types.Int64, "g": types.Int64, "v": types.Float64}, []string{"k", "g", "v"}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 0, 4000)
	for i := 0; i < 4000; i++ {
		rows = append(rows, []Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 8)),
			types.NewFloat(float64(i) * 0.5),
		})
	}
	if err := db.InsertRows("pt", rows); err != nil {
		t.Fatal(err)
	}

	warm := `SELECT p.g, SUM(p.v) AS total FROM pt p GROUP BY p.g`
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(warm); err != nil {
			t.Fatal(err)
		}
	}
	before := db.ShardCacheStats()
	for s, st := range before {
		if st.Entries == 0 {
			t.Fatalf("shard %d has no cached artifacts after warmup", s)
		}
	}

	// One new row lands on exactly one shard.
	key := int64(999_983)
	target := storage.ShardOf(types.NewInt(key), shards)
	err := db.InsertRows("pt", [][]Value{{types.NewInt(key), types.NewInt(3), types.NewFloat(1.5)}})
	if err != nil {
		t.Fatal(err)
	}
	after := db.ShardCacheStats()
	for s := range after {
		if s == target {
			if after[s].Entries != 0 {
				t.Fatalf("target shard %d still caches %d artifacts after insert", s, after[s].Entries)
			}
			continue
		}
		if after[s].Entries != before[s].Entries {
			t.Fatalf("untouched shard %d went from %d to %d cached artifacts", s, before[s].Entries, after[s].Entries)
		}
	}

	// And the post-insert result is correct (the stale shard rebuilt).
	res, err := db.Exec(warm)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, row := range res.Rows {
		total += row[1].AsFloat()
	}
	want := 0.0
	for i := 0; i < 4000; i++ {
		want += float64(i) * 0.5
	}
	want += 1.5
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("post-insert total %v, want %v", total, want)
	}

	// Aggregated stats fold the per-shard caches.
	agg := db.CacheStats()
	var sum int
	for _, st := range db.ShardCacheStats() {
		sum += st.Entries
	}
	if agg.Entries != sum {
		t.Fatalf("aggregate Entries %d != per-shard sum %d", agg.Entries, sum)
	}
}

// TestShardedConcurrentStorm drives point, scatter and exchange
// queries from many goroutines at once — the race-detector workout for
// the router, the shared scheduler run, exchange temp registration and
// per-shard cache lifecycles.
func TestShardedConcurrentStorm(t *testing.T) {
	db := openShardedTPCH(t, 4)
	queries := []string{
		`SELECT c.c_age, SUM(o.o_totalprice) AS spend FROM customer c, orders o
		   WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 7 GROUP BY c.c_age`,
		`SELECT c.c_age, SUM(o.o_totalprice) AS spend FROM customer c, orders o
		   WHERE c.c_custkey = o.o_custkey GROUP BY c.c_age`,
		`SELECT o.o_orderstatus, COUNT(*) AS n FROM orders o, lineitem l
		   WHERE o.o_orderkey = l.l_orderkey GROUP BY o.o_orderstatus`,
		`SELECT c.c_name, c.c_age FROM customer c WHERE c.c_age BETWEEN 30 AND 50`,
		`SELECT c.c_age, COUNT(*) AS n FROM customer c GROUP BY c.c_age ORDER BY c.c_age LIMIT 5`,
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < len(queries); i++ {
				sql := queries[(w+i)%len(queries)]
				if _, err := db.Exec(sql); err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedPostHocPartition: PartitionTable re-keys a loaded table;
// queries still answer correctly and a point query routes afterwards.
func TestShardedPostHocPartition(t *testing.T) {
	db := Open(WithShards(4)) // no declared keys: everything replicated
	if err := db.LoadTPCH(0.002); err != nil {
		t.Fatal(err)
	}
	ref := openTPCH(t, WithEngine(EngineNoReuse))
	sql := `SELECT c.c_age, COUNT(*) AS n FROM customer c WHERE c.c_custkey = 11 GROUP BY c.c_age`

	// Replicated-only queries run on shard 0.
	before := db.ShardQueryCounts()
	if _, err := db.Exec(sql); err != nil {
		t.Fatal(err)
	}
	after := db.ShardQueryCounts()
	if after[0]-before[0] != 1 {
		t.Fatalf("replicated-only query ran %d legs on shard 0", after[0]-before[0])
	}

	if err := db.PartitionTable("customer", "c_custkey"); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	before = db.ShardQueryCounts()
	got, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	after = db.ShardQueryCounts()
	legs := 0
	for s := range after {
		legs += int(after[s] - before[s])
	}
	if legs != 1 {
		t.Fatalf("point query after PartitionTable ran %d legs, want 1", legs)
	}
	assertSameRows(t, "post-hoc", got, want)

	// Unsharded DBs answer the shard observability calls harmlessly.
	un := openTPCH(t)
	if un.Shards() != 1 || un.ShardQueryCounts() != nil || len(un.ShardCacheStats()) != 1 {
		t.Fatal("unsharded shard-observability defaults wrong")
	}
	if err := un.PartitionTable("customer", "c_custkey"); err == nil {
		t.Fatal("PartitionTable must require WithShards")
	}
}
