package hashstash

// End-to-end evaluation of the tiered cache: benefit-per-byte eviction
// versus the LRU ablation on a Zipf-skewed workload at half the working
// set, plus microbenchmarks for the cold-tier mechanics (spill revival
// latency, bloom membership probes, post-revival probe cost). CI pipes
// BenchmarkCacheTiering through cmd/benchjson against BENCH_cache.json.

import (
	"context"
	"testing"

	"hashstash/internal/btree"
	"hashstash/internal/expr"
	"hashstash/internal/hashtable"
	"hashstash/internal/htcache"
	"hashstash/internal/storage"
	"hashstash/internal/types"
	"hashstash/internal/workload"
)

// tieringSF is the TPC-H scale the tiering trace runs at: large enough
// that rebuilding an evicted artifact costs visibly more than reviving
// a compact spill.
const tieringSF = 0.01

// tieringWorkload is the shared Zipf-skewed trace: a heavy head of
// recurring shapes plus ~30% one-shot pollution, which is exactly the
// mix where recency ranking (LRU) keeps the wrong artifacts.
func tieringWorkload() []workload.Step {
	return workload.GenerateSkewed(workload.SkewConfig{
		N: 120, Shapes: 8, S: 1.1, OneShotFrac: 0.3, Seed: 42,
	})
}

// runSteps replays the trace and returns the summed optimizer cost
// estimate (ns) of the chosen plans. Both policies face the same trace,
// so a lower total modeled cost means more total reuse savings against
// the shared fresh-build baseline — the comparison nets out rebuild
// work, which a per-hit savings counter alone would not (a policy that
// evicts and rebuilds constantly re-earns full exact-hit credit while
// silently re-paying every build).
func runSteps(tb testing.TB, db *DB, steps []workload.Step) float64 {
	tb.Helper()
	total := 0.0
	for _, st := range steps {
		res, err := db.ExecParsed(context.Background(), st.Query)
		if err != nil {
			tb.Fatal(err)
		}
		total += res.EstimatedCost
	}
	return total
}

// tieringWorkingSet replays the trace unbudgeted and reports the bytes
// the cache holds at the end — the trace's full working set.
func tieringWorkingSet(tb testing.TB, steps []workload.Step) int64 {
	tb.Helper()
	db := Open()
	if err := db.LoadTPCH(tieringSF); err != nil {
		tb.Fatal(err)
	}
	runSteps(tb, db, steps)
	ws := db.CacheStats().Bytes
	if ws == 0 {
		tb.Fatal("sizing run cached nothing")
	}
	return ws
}

// TestBenefitBeatsLRU is the policy acceptance test: with the budget at
// half the working set, benefit-per-byte eviction (plus the cold tier)
// must end the skewed trace at no more total modeled cost than the LRU
// ablation — i.e. at least as much total reuse savings against the
// shared fresh-build baseline.
func TestBenefitBeatsLRU(t *testing.T) {
	steps := tieringWorkload()
	budget := tieringWorkingSet(t, steps) / 2

	open := func(opts ...Option) *DB {
		db := Open(opts...)
		if err := db.LoadTPCH(tieringSF); err != nil {
			t.Fatal(err)
		}
		return db
	}
	benefit := open(WithCacheBudget(budget), WithColdTierBudget(budget*4))
	benefitCost := runSteps(t, benefit, steps)
	lru := open(WithCacheBudget(budget), WithLRUEviction())
	lruCost := runSteps(t, lru, steps)

	bs, ls := benefit.CacheStats(), lru.CacheStats()
	t.Logf("benefit: trace cost=%.3e saved=%.0f hits=%d reg=%d demotions=%d revivals=%d rebuilds=%d bloomFP=%d/%d",
		benefitCost, bs.Tiering.SavedNS, bs.Hits, bs.Registered, bs.Tiering.Demotions,
		bs.Tiering.Revivals, bs.Tiering.ReviveRebuilds, bs.Tiering.BloomFalsePositives, bs.Tiering.BloomProbes)
	t.Logf("lru:     trace cost=%.3e saved=%.0f hits=%d reg=%d evictions=%d",
		lruCost, ls.Tiering.SavedNS, ls.Hits, ls.Registered, ls.Tiering.LRUEvictions)
	if ls.Tiering.LRUEvictions == 0 {
		t.Fatal("budget never bound under LRU: trace does not exceed the budget")
	}
	if bs.Tiering.Demotions+bs.Tiering.BenefitEvictions == 0 {
		t.Fatal("budget never bound under benefit policy")
	}
	if benefitCost > lruCost {
		t.Fatalf("benefit policy's trace cost %.3e exceeds LRU's %.3e: less total reuse savings", benefitCost, lruCost)
	}
}

// benchHT builds an orders-shaped single-key build table with the given
// row count, mirroring the htcache test fixtures.
func benchHT(rows int) *hashtable.Table {
	layout := hashtable.Layout{
		Cols: []storage.ColMeta{
			{Ref: storage.ColRef{Table: "orders", Column: "o_custkey"}, Kind: types.Int64},
			{Ref: storage.ColRef{Table: "orders", Column: "o_orderdate"}, Kind: types.Date},
		},
		KeyCols: 1,
	}
	ht := hashtable.New(layout)
	for i := 0; i < rows; i++ {
		ht.Insert([]uint64{uint64(i), uint64(i * 10)})
	}
	return ht
}

func benchLin() htcache.Lineage {
	return htcache.Lineage{
		Kind:    htcache.JoinBuild,
		Tables:  []string{"orders"},
		JoinSig: "orders|",
		Filter: expr.NewBox(expr.Pred{
			Col: storage.ColRef{Table: "orders", Column: "o_orderdate"},
			Con: expr.IntervalConstraint(types.Date, expr.Interval{
				HasLo: true, Lo: types.NewDate(100), LoIncl: true,
			}),
		}),
		KeyCols: []storage.ColRef{{Table: "orders", Column: "o_custkey"}},
		QidCol:  -1,
	}
}

// BenchmarkCacheTiering covers the tiering hot paths:
//
//   - policy=benefit / policy=lru: the skewed trace end to end at half
//     the working set; hit-ratio and saved-Mcost metrics compare the
//     two eviction policies.
//   - revive=hashtable / revive=btree: full demote→spill→revive cycle
//     latency for both artifact kinds.
//   - bloom=probe: cold-tier membership test; must stay 0 allocs/op.
//   - hotprobe=restored: steady-state probe against a revived table;
//     must stay 0 allocs/op (revival cannot degrade the probe path).
func BenchmarkCacheTiering(b *testing.B) {
	steps := tieringWorkload()
	budget := tieringWorkingSet(b, steps) / 2

	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"policy=benefit", []Option{WithCacheBudget(budget), WithColdTierBudget(budget * 4)}},
		{"policy=lru", []Option{WithCacheBudget(budget), WithLRUEviction()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var last CacheStats
			var cost float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := Open(cfg.opts...)
				if err := db.LoadTPCH(tieringSF); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cost = runSteps(b, db, steps)
				last = db.CacheStats()
			}
			b.ReportMetric(last.HitRatio, "hit-ratio")
			b.ReportMetric(cost/1e6, "trace-Mcost")
			b.ReportMetric(last.Tiering.SavedNS/1e6, "saved-Mcost")
			if last.Tiering.BloomProbes > 0 {
				b.ReportMetric(float64(last.Tiering.BloomFalsePositives)/float64(last.Tiering.BloomProbes), "bloom-fp-rate")
			}
		})
	}

	b.Run("revive=hashtable", func(b *testing.B) {
		c := htcache.New(0)
		c.SetColdBudget(1 << 30)
		e := c.Register(benchHT(1<<14), benchLin())
		c.Release(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SetBudget(1) // demote + spill (no readers: immediate)
			c.SetBudget(0)
			if snap := c.Revive(e, nil); snap == nil || snap.HT == nil {
				b.Fatal("hash-table revival failed")
			}
		}
	})

	b.Run("revive=btree", func(b *testing.B) {
		col := storage.NewColumn("o_orderdate", types.Int64)
		for i := 0; i < 1<<14; i++ {
			col.Append(types.NewInt(int64(i*2654435761) % 100000))
		}
		tree, err := btree.Build(col)
		if err != nil {
			b.Fatal(err)
		}
		c := htcache.New(0)
		c.SetColdBudget(1 << 30)
		e := c.RegisterIndex(tree, storage.ColRef{Table: "orders", Column: "o_orderdate"})
		c.Release(e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SetBudget(1)
			c.SetBudget(0)
			if snap := c.Revive(e, col); snap == nil || snap.Idx == nil {
				b.Fatal("index revival failed")
			}
		}
	})

	b.Run("bloom=probe", func(b *testing.B) {
		c := htcache.New(0)
		c.SetColdBudget(1 << 30)
		e := c.Register(benchHT(1<<14), benchLin())
		c.Release(e)
		c.SetBudget(1) // demote + spill
		ca := c.ColdCandidate(benchLin())
		if ca == nil {
			b.Fatal("no cold candidate after demotion")
		}
		b.ReportAllocs()
		b.ResetTimer()
		absent, fp := 0, 0
		for i := 0; i < b.N; i++ {
			k := int64(i & 0xffff)
			hit := ca.MayContain(htcache.StableValueHash(types.NewInt(k)))
			if k >= 1<<14 { // not inserted: any pass is a false positive
				absent++
				if hit {
					fp++
				}
			}
		}
		if absent > 0 {
			b.ReportMetric(float64(fp)/float64(absent), "bloom-fp-rate")
		}
	})

	b.Run("hotprobe=restored", func(b *testing.B) {
		const n = 1 << 14
		restored := benchHT(n).Spill().Restore()
		key := []uint64{0}
		var sink int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key[0] = uint64(i % n)
			it := restored.Probe(key)
			for e := it.Next(); e != -1; e = it.Next() {
				sink += int64(e)
			}
		}
		_ = sink
	})
}
